"""The durable job store: a broker-free queue on a single SQLite file.

Celery-shaped systems put the queue in a broker (Redis, RabbitMQ) and
the results in a backend; this store is both, in one SQLite database,
so every piece of service state survives any process death and every
state transition is a single ACID transaction.  Clients, the serve
driver, and the workers all open the same file — SQLite's WAL mode and
``BEGIN IMMEDIATE`` transactions give the cross-process atomicity a
broker would, without a broker process to install, start, or mock.

**Job lifecycle** is a strict state machine::

    queued ──▶ running ──▶ done | failed | cancelled
       └──────────────────▶ cancelled

Transitions are compare-and-swap updates (``UPDATE ... WHERE state =
?``) — a lost race surfaces as :class:`InvalidTransition`, never as a
silently clobbered row.  Cancellation is cooperative past the queue:
a queued job cancels immediately; a running job gets
``cancel_requested`` set and settles as ``cancelled`` when its worker
reaches the next transition.

**Admission control** happens at submit time, inside the insert
transaction:

* global backpressure — more than ``max_depth`` queued jobs rejects
  with :class:`QueueFull` (submit never blocks, callers decide whether
  to retry);
* per-tenant quota — more than ``tenant_max_inflight`` queued+running
  jobs for one tenant rejects with :class:`TenantQuotaExceeded` (a
  :class:`QueueFull` subclass), so one tenant cannot occupy the whole
  queue.

**Dispatch order** is priority lanes with bounded starvation: lane 0
(``interactive``) beats lane 1 (``batch``), FIFO within a lane, but
every time a lane with queued work is passed over its ``passed_over``
credit grows; once it reaches ``boost_after`` the starved lane *must*
be served next.  A lane therefore waits at most ``boost_after``
consecutive claims — strict enough to test, fair enough to serve.

**Recovery**: a claim stamps the worker's pid and a lease deadline.
:meth:`JobStore.requeue_orphans` returns any ``running`` job whose
owner is dead (or lease expired) to ``queued`` — keeping its original
id, so a re-adopted job re-enters at the front of its lane's FIFO and
its checkpoint journal lets the next worker resume, not restart.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "LANES",
    "STATES",
    "TERMINAL_STATES",
    "ServiceError",
    "QueueFull",
    "TenantQuotaExceeded",
    "JobNotFound",
    "InvalidTransition",
    "JobStore",
    "lane_priority",
    "lane_name",
    "default_spool",
]

#: Named priority lanes: lower number wins a claim (subject to the
#: starvation bound).  ``interactive`` is the low-latency lane the
#: tiered-detection roadmap item plugs into; ``batch`` is the default.
LANES: Dict[str, int] = {"interactive": 0, "batch": 1}

STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

#: Default admission bounds (overridable per spool via ``configure``).
DEFAULT_MAX_DEPTH = 64
DEFAULT_TENANT_MAX_INFLIGHT = 8
DEFAULT_BOOST_AFTER = 4
#: Seconds a claimed job's lease lasts without a heartbeat before the
#: driver may treat its worker as dead even when the pid looks alive
#: (pid reuse); heartbeats renew it.
DEFAULT_LEASE_SECONDS = 600.0

DB_FILE = "service.db"


class ServiceError(Exception):
    """Base class for user-facing service failures."""


class QueueFull(ServiceError):
    """Submit rejected: the queue is at its depth bound.

    Explicit backpressure — the caller sees the rejection immediately
    instead of the queue growing without bound or the submit hanging.
    """

    def __init__(self, message: str, depth: int, bound: int) -> None:
        super().__init__(message)
        self.depth = depth
        self.bound = bound


class TenantQuotaExceeded(QueueFull):
    """Submit rejected: this tenant is at its in-flight quota."""


class JobNotFound(ServiceError, KeyError):
    """No job with that id in the store."""

    def __str__(self) -> str:  # KeyError quotes its message otherwise
        return self.args[0] if self.args else ""


class InvalidTransition(ServiceError):
    """A state change that the job lifecycle does not allow."""


def lane_priority(lane: str | int) -> int:
    """Resolve a lane name (or already-numeric priority) to its number."""
    if isinstance(lane, int):
        return lane
    try:
        return LANES[lane]
    except KeyError:
        raise ServiceError(
            f"unknown lane {lane!r}; known lanes: "
            f"{', '.join(sorted(LANES))}"
        ) from None


def lane_name(priority: int) -> str:
    """The display name of a lane number (falls back to ``lane-N``)."""
    for name, value in LANES.items():
        if value == priority:
            return name
    return f"lane-{priority}"


def default_spool() -> str:
    return os.path.join(os.getcwd(), ".repro-service")


_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    tenant TEXT NOT NULL,
    lane INTEGER NOT NULL,
    state TEXT NOT NULL DEFAULT 'queued',
    cancel_requested INTEGER NOT NULL DEFAULT 0,
    spec TEXT NOT NULL,
    result TEXT,
    error TEXT,
    owner_pid INTEGER,
    lease_deadline REAL,
    attempts INTEGER NOT NULL DEFAULT 0,
    submitted_at REAL NOT NULL,
    started_at REAL,
    finished_at REAL
);
CREATE INDEX IF NOT EXISTS jobs_by_state_lane
    ON jobs (state, lane, id);
CREATE TABLE IF NOT EXISTS lane_credits (
    lane INTEGER PRIMARY KEY,
    passed_over INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS config (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""

_CONFIG_DEFAULTS = {
    "max_depth": DEFAULT_MAX_DEPTH,
    "tenant_max_inflight": DEFAULT_TENANT_MAX_INFLIGHT,
    "boost_after": DEFAULT_BOOST_AFTER,
    "lease_seconds": DEFAULT_LEASE_SECONDS,
}


class JobStore:
    """One process's handle on the shared SQLite-backed job queue.

    Every public method is one transaction; instances are cheap and
    single-threaded (open one per process/thread, they all see the same
    queue).
    """

    def __init__(self, spool_dir: str) -> None:
        self.spool_dir = os.path.abspath(spool_dir)
        os.makedirs(self.spool_dir, exist_ok=True)
        self.db_path = os.path.join(self.spool_dir, DB_FILE)
        self._conn = sqlite3.connect(
            self.db_path, timeout=30.0, isolation_level=None
        )
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=FULL")
        self._conn.execute("PRAGMA busy_timeout=30000")
        # executescript manages its own commit; don't wrap it in _txn.
        self._conn.executescript(_SCHEMA)

    # -- plumbing ------------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _txn(self):
        return _Transaction(self._conn)

    def job_dir(self, job_id: int) -> str:
        """The per-job scratch directory (checkpoint, result, trace)."""
        return os.path.join(self.spool_dir, "jobs", str(int(job_id)))

    # -- configuration -------------------------------------------------
    def configure(self, **overrides: Any) -> Dict[str, Any]:
        """Persist admission-control overrides (serve's flags live here,
        so submitting clients enforce the same bounds)."""
        unknown = set(overrides) - set(_CONFIG_DEFAULTS)
        if unknown:
            raise ServiceError(
                f"unknown service config keys: {sorted(unknown)}"
            )
        with self._txn():
            for key, value in overrides.items():
                if value is None:
                    continue
                self._conn.execute(
                    "INSERT INTO config (key, value) VALUES (?, ?) "
                    "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
                    (key, json.dumps(value)),
                )
        return self.config()

    def config(self) -> Dict[str, Any]:
        rows = self._conn.execute(
            "SELECT key, value FROM config"
        ).fetchall()
        config = dict(_CONFIG_DEFAULTS)
        for row in rows:
            if row["key"] in config:
                config[row["key"]] = json.loads(row["value"])
        return config

    # -- submit (admission control + backpressure) ---------------------
    def submit(
        self,
        spec: Dict[str, Any],
        tenant: str = "default",
        lane: str | int = "batch",
    ) -> int:
        """Admit one job; returns its id or raises :class:`QueueFull`."""
        if not tenant or "/" in tenant:
            raise ServiceError(f"invalid tenant name {tenant!r}")
        priority = lane_priority(lane)
        now = time.time()
        with self._txn():
            config = self.config()
            depth = self._conn.execute(
                "SELECT COUNT(*) FROM jobs WHERE state = 'queued'"
            ).fetchone()[0]
            if depth >= config["max_depth"]:
                raise QueueFull(
                    f"queue is full ({depth} queued >= bound "
                    f"{config['max_depth']}); retry after jobs drain",
                    depth=depth, bound=config["max_depth"],
                )
            inflight = self._conn.execute(
                "SELECT COUNT(*) FROM jobs WHERE tenant = ? "
                "AND state IN ('queued', 'running')",
                (tenant,),
            ).fetchone()[0]
            if inflight >= config["tenant_max_inflight"]:
                raise TenantQuotaExceeded(
                    f"tenant {tenant!r} has {inflight} jobs in flight "
                    f">= quota {config['tenant_max_inflight']}",
                    depth=inflight,
                    bound=config["tenant_max_inflight"],
                )
            cursor = self._conn.execute(
                "INSERT INTO jobs (tenant, lane, state, spec, "
                "submitted_at) VALUES (?, ?, 'queued', ?, ?)",
                (tenant, priority, json.dumps(spec), now),
            )
            return int(cursor.lastrowid)

    # -- claim (priority + FIFO + bounded starvation) ------------------
    def claim(
        self, owner_pid: Optional[int] = None
    ) -> Optional[Dict[str, Any]]:
        """Atomically move the next eligible job to ``running``.

        Lane choice: any lane whose ``passed_over`` credit has reached
        ``boost_after`` is served first (most-starved wins); otherwise
        the highest-priority non-empty lane.  Within the chosen lane,
        strictly the oldest job.  Returns the claimed job dict or
        ``None`` when nothing is queued.
        """
        owner_pid = os.getpid() if owner_pid is None else int(owner_pid)
        now = time.time()
        with self._txn():
            config = self.config()
            lanes = self._conn.execute(
                "SELECT lane, MIN(id) AS oldest FROM jobs "
                "WHERE state = 'queued' GROUP BY lane ORDER BY lane"
            ).fetchall()
            if not lanes:
                return None
            credits = {
                row["lane"]: row["passed_over"]
                for row in self._conn.execute(
                    "SELECT lane, passed_over FROM lane_credits"
                )
            }
            starved = [
                row for row in lanes
                if credits.get(row["lane"], 0) >= config["boost_after"]
            ]
            if starved:
                starved.sort(
                    key=lambda r: (-credits.get(r["lane"], 0), r["lane"])
                )
                chosen = starved[0]
            else:
                chosen = lanes[0]  # ordered by lane: highest priority
            job_id = int(chosen["oldest"])
            cursor = self._conn.execute(
                "UPDATE jobs SET state = 'running', owner_pid = ?, "
                "lease_deadline = ?, started_at = ?, "
                "attempts = attempts + 1 "
                "WHERE id = ? AND state = 'queued'",
                (owner_pid, now + config["lease_seconds"], now, job_id),
            )
            if cursor.rowcount != 1:  # pragma: no cover - same txn
                raise InvalidTransition(f"job {job_id} vanished mid-claim")
            for row in lanes:
                lane = int(row["lane"])
                passed = 0 if lane == int(chosen["lane"]) else (
                    credits.get(lane, 0) + 1
                )
                self._conn.execute(
                    "INSERT INTO lane_credits (lane, passed_over) "
                    "VALUES (?, ?) ON CONFLICT(lane) DO UPDATE SET "
                    "passed_over = excluded.passed_over",
                    (lane, passed),
                )
        return self.get(job_id)

    def heartbeat(self, job_id: int, owner_pid: Optional[int] = None) -> None:
        """Renew a running job's lease (workers call this between
        commits); harmless if the job already settled."""
        owner_pid = os.getpid() if owner_pid is None else int(owner_pid)
        with self._txn():
            config = self.config()
            self._conn.execute(
                "UPDATE jobs SET lease_deadline = ? "
                "WHERE id = ? AND state = 'running' AND owner_pid = ?",
                (time.time() + config["lease_seconds"], int(job_id),
                 owner_pid),
            )

    # -- settle --------------------------------------------------------
    def finish(
        self,
        job_id: int,
        state: str,
        result: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
        owner_pid: Optional[int] = None,
    ) -> str:
        """Settle a running job as ``done`` or ``failed``.

        If cancellation was requested while the job ran, the job settles
        as ``cancelled`` instead (the result is discarded — the caller
        asked for the job not to count).  Returns the state actually
        recorded.
        """
        if state not in ("done", "failed"):
            raise InvalidTransition(
                f"finish() settles 'done' or 'failed', not {state!r}"
            )
        with self._txn():
            row = self._conn.execute(
                "SELECT state, cancel_requested, owner_pid FROM jobs "
                "WHERE id = ?",
                (int(job_id),),
            ).fetchone()
            if row is None:
                raise JobNotFound(f"no job {job_id}")
            if row["state"] != "running":
                raise InvalidTransition(
                    f"job {job_id} is {row['state']}, not running"
                )
            if owner_pid is not None and row["owner_pid"] != owner_pid:
                raise InvalidTransition(
                    f"job {job_id} is owned by pid {row['owner_pid']}, "
                    f"not {owner_pid}"
                )
            final = "cancelled" if row["cancel_requested"] else state
            self._conn.execute(
                "UPDATE jobs SET state = ?, result = ?, error = ?, "
                "owner_pid = NULL, lease_deadline = NULL, "
                "finished_at = ? WHERE id = ? AND state = 'running'",
                (
                    final,
                    None if final == "cancelled" or result is None
                    else json.dumps(result),
                    error,
                    time.time(),
                    int(job_id),
                ),
            )
        return final

    def cancel(self, job_id: int) -> str:
        """Cancel a job; returns the resulting state.

        Queued jobs cancel immediately; running jobs are *marked* and
        settle as ``cancelled`` at their worker's next transition
        (cooperative cancellation — a distributed worker cannot be
        preempted mid-partition without losing its journal guarantees).
        Terminal jobs are left alone (idempotent).
        """
        with self._txn():
            row = self._conn.execute(
                "SELECT state FROM jobs WHERE id = ?", (int(job_id),)
            ).fetchone()
            if row is None:
                raise JobNotFound(f"no job {job_id}")
            state = row["state"]
            if state == "queued":
                self._conn.execute(
                    "UPDATE jobs SET state = 'cancelled', "
                    "cancel_requested = 1, finished_at = ? "
                    "WHERE id = ? AND state = 'queued'",
                    (time.time(), int(job_id)),
                )
                return "cancelled"
            if state == "running":
                self._conn.execute(
                    "UPDATE jobs SET cancel_requested = 1 "
                    "WHERE id = ? AND state = 'running'",
                    (int(job_id),),
                )
                return "cancel_requested"
            return state

    # -- recovery ------------------------------------------------------
    def requeue_orphans(
        self,
        is_alive: Optional[Callable[[int], bool]] = None,
        now: Optional[float] = None,
    ) -> List[int]:
        """Return dead workers' running jobs to their lanes.

        A running job is orphaned when its owner pid no longer exists,
        or its lease expired (covers pid reuse).  Re-queued jobs keep
        their original id — oldest-first FIFO puts them at the front of
        their lane, and their checkpoint journal turns the re-run into
        a resume.
        """
        is_alive = _pid_alive if is_alive is None else is_alive
        now = time.time() if now is None else now
        adopted: List[int] = []
        with self._txn():
            rows = self._conn.execute(
                "SELECT id, owner_pid, lease_deadline FROM jobs "
                "WHERE state = 'running'"
            ).fetchall()
            for row in rows:
                dead = row["owner_pid"] is None or not is_alive(
                    int(row["owner_pid"])
                )
                expired = (
                    row["lease_deadline"] is not None
                    and row["lease_deadline"] < now
                )
                if dead or expired:
                    self._conn.execute(
                        "UPDATE jobs SET state = 'queued', "
                        "owner_pid = NULL, lease_deadline = NULL, "
                        "started_at = NULL "
                        "WHERE id = ? AND state = 'running'",
                        (int(row["id"]),),
                    )
                    adopted.append(int(row["id"]))
        return adopted

    # -- introspection -------------------------------------------------
    def get(self, job_id: int) -> Dict[str, Any]:
        row = self._conn.execute(
            "SELECT * FROM jobs WHERE id = ?", (int(job_id),)
        ).fetchone()
        if row is None:
            raise JobNotFound(f"no job {job_id}")
        return self._row_to_dict(row)

    def jobs(
        self,
        state: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        query = "SELECT * FROM jobs"
        clauses, params = [], []
        if state is not None:
            clauses.append("state = ?")
            params.append(state)
        if tenant is not None:
            clauses.append("tenant = ?")
            params.append(tenant)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY id"
        return [
            self._row_to_dict(row)
            for row in self._conn.execute(query, params)
        ]

    def depth(self) -> int:
        return self._conn.execute(
            "SELECT COUNT(*) FROM jobs WHERE state = 'queued'"
        ).fetchone()[0]

    def stats(self) -> Dict[str, Any]:
        """Queue shape for ``repro status`` and the serve driver."""
        by_state = {state: 0 for state in STATES}
        for row in self._conn.execute(
            "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
        ):
            by_state[row["state"]] = int(row["n"])
        by_lane: Dict[str, int] = {}
        for row in self._conn.execute(
            "SELECT lane, COUNT(*) AS n FROM jobs "
            "WHERE state = 'queued' GROUP BY lane"
        ):
            by_lane[lane_name(int(row["lane"]))] = int(row["n"])
        return {
            "states": by_state,
            "queued_by_lane": by_lane,
            "depth": by_state["queued"],
            "config": self.config(),
        }

    @staticmethod
    def _row_to_dict(row: sqlite3.Row) -> Dict[str, Any]:
        job = dict(row)
        job["spec"] = json.loads(job["spec"])
        job["result"] = (
            json.loads(job["result"]) if job["result"] else None
        )
        job["lane_name"] = lane_name(int(job["lane"]))
        job["cancel_requested"] = bool(job["cancel_requested"])
        return job


class _Transaction:
    """``BEGIN IMMEDIATE`` context manager: one writer at a time, commit
    on success, rollback on any exception."""

    def __init__(self, conn: sqlite3.Connection) -> None:
        self.conn = conn

    def __enter__(self) -> sqlite3.Connection:
        self.conn.execute("BEGIN IMMEDIATE")
        return self.conn

    def __exit__(self, exc_type, *exc_info) -> None:
        if exc_type is None:
            self.conn.execute("COMMIT")
        else:
            self.conn.execute("ROLLBACK")


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    return True
