"""ServiceClient: the library face of the detection service.

A client talks straight to the spool's SQLite store — broker-free means
there is no daemon to connect to for submit/status/result/cancel; only
*execution* needs a running ``repro serve``.  Submitting while the
service is down is therefore well-defined: the job queues durably and
runs when a serve next comes up.

    client = ServiceClient("spool/")
    job_id = client.submit("points.csv", r=2.0, k=12, tenant="acme")
    report = client.result(job_id, timeout=60.0)   # blocks, polling
    print(report["outliers"])

Backpressure is explicit: :meth:`submit` raises
:class:`~repro.service.store.QueueFull` (or its per-tenant subclass
:class:`~repro.service.store.TenantQuotaExceeded`) instead of blocking.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, Optional

from .store import (
    TERMINAL_STATES,
    JobDeadlineExceeded,
    JobExpired,
    JobNotFound,
    JobStore,
    ServiceError,
)
from .worker import RESULT_FILE, TRACE_FILE

__all__ = ["ServiceClient", "JobTimeout", "JobFailed"]

_FAILURE_KIND_ERRORS = {
    "deadline": JobDeadlineExceeded,
}

#: Seconds between store polls while waiting on a result.
_WAIT_POLL_SECONDS = 0.05


class JobTimeout(ServiceError, TimeoutError):
    """result()/wait() gave up before the job settled."""


class JobFailed(ServiceError):
    """The awaited job settled as failed or cancelled."""

    def __init__(self, job: Dict[str, Any]) -> None:
        self.job = job
        detail = job.get("error") or "(no error recorded)"
        super().__init__(
            f"job {job['id']} {job['state']}: {detail}"
        )


class ServiceClient:
    """Submit, inspect, await, and cancel jobs in one spool."""

    def __init__(self, spool_dir: str) -> None:
        self.spool_dir = spool_dir
        self.store = JobStore(spool_dir)

    def close(self) -> None:
        self.store.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- submit --------------------------------------------------------
    def submit(
        self,
        input_path: str,
        r: float,
        k: int,
        tenant: str = "default",
        lane: str = "batch",
        strategy: str = "DMT",
        detector: str = "nested_loop",
        seed: int = 1,
        nodes: int = 4,
        workers: int = 0,
        transport: str = "pickle",
        kernel: Optional[str] = None,
        metric: Optional[str] = None,
        with_ids: bool = False,
        n_partitions: Optional[int] = None,
        n_reducers: Optional[int] = None,
        tier: Optional[str] = None,
    ) -> int:
        """Queue one detection job; returns its id.

        The input path is recorded, not copied — it must stay readable
        until the job runs (absolute-ified here so workers started from
        another directory still find it).
        ``tier=None`` defers to the lane's default — ``fast`` for the
        interactive lane, ``exact`` for everything else; pass an
        explicit tier ("exact", "fast", "auto") to override.
        """
        spec = {
            "input": os.path.abspath(input_path),
            "with_ids": bool(with_ids),
            "r": float(r),
            "k": int(k),
            "strategy": strategy,
            "detector": detector,
            "seed": int(seed),
            "nodes": int(nodes),
            "workers": int(workers),
            "transport": transport,
            "kernel": kernel,
            "metric": metric,
            "n_partitions": n_partitions,
            "n_reducers": n_reducers,
            "tier": tier,
        }
        return self.store.submit(spec, tenant=tenant, lane=lane)

    # -- inspect -------------------------------------------------------
    def status(self, job_id: int) -> Dict[str, Any]:
        """The job row: state, tenant, lane, timings, error."""
        job = self.store.get(job_id)
        if job["started_at"] is not None:
            job["queue_wait_seconds"] = (
                job["started_at"] - job["submitted_at"]
            )
        return job

    def queue_stats(self) -> Dict[str, Any]:
        return self.store.stats()

    def health(self) -> Dict[str, Any]:
        """Service health: per-lane queue depths, worker liveness and
        heartbeat age, degrade state, quarantine count (``repro
        health``'s payload)."""
        return self.store.health()

    def tenant_stats(
        self, tenant: Optional[str] = None
    ) -> Dict[str, Dict[str, Any]]:
        """Per-tenant rates: submitted/done/failed/quarantined counts
        plus queue-wait p50/p95."""
        return self.store.tenant_stats(tenant)

    # -- await ---------------------------------------------------------
    def wait(
        self, job_id: int, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Block until the job settles; returns the terminal job row."""
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        while True:
            job = self.store.get(job_id)
            if job["state"] in TERMINAL_STATES:
                return job
            if deadline is not None and time.monotonic() > deadline:
                raise JobTimeout(
                    f"job {job_id} still {job['state']} after "
                    f"{timeout:g}s (is a 'repro serve' running on "
                    f"{self.spool_dir}?)"
                )
            time.sleep(_WAIT_POLL_SECONDS)

    def result(
        self, job_id: int, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """The finished job's report.

        Raises typed errors for every way the job can be unreadable:
        :class:`~repro.service.store.JobExpired` (TTL gc reaped it),
        :class:`~repro.service.store.JobDeadlineExceeded` (its lane
        deadline fired), and :class:`JobFailed` for everything else
        that settled without a result (including quarantined poison
        jobs, whose error names the preserved journal).
        """
        job = self.wait(job_id, timeout=timeout)
        if job["state"] == "expired":
            raise JobExpired(
                f"job {job_id} expired: {job.get('error') or 'reaped'}"
            )
        if job["state"] != "done":
            typed = _FAILURE_KIND_ERRORS.get(job.get("failure_kind"))
            if typed is not None:
                raise typed(
                    f"job {job_id} {job['state']}: "
                    f"{job.get('error') or '(no error recorded)'}"
                )
            raise JobFailed(job)
        if job["result"] is not None:
            return job["result"]
        # Fall back to the artifact (the store row is authoritative but
        # a driver-side tool may have trimmed it).
        path = os.path.join(
            self.store.job_dir(job_id), RESULT_FILE
        )
        try:
            with open(path) as f:
                return json.load(f)
        except (OSError, ValueError) as exc:  # pragma: no cover
            raise JobNotFound(
                f"job {job_id} is done but its result is unreadable: "
                f"{exc}"
            ) from exc

    def trace_path(self, job_id: int) -> str:
        """Where the job's queue-wait/run trace lives (repro trace)."""
        return os.path.join(self.store.job_dir(job_id), TRACE_FILE)

    # -- cancel --------------------------------------------------------
    def cancel(self, job_id: int) -> str:
        return self.store.cancel(job_id)
