"""Multi-tenant detection service: a broker-free async job queue.

The long-lived tier over the one-shot engine (ROADMAP item 1).  Four
pieces, all sharing one *spool directory* as their only coupling:

* :mod:`~repro.service.store` — the durable queue: a SQLite-backed
  job store with atomic ``queued -> running -> done|failed|cancelled``
  transitions, priority lanes with FIFO order and a bounded-starvation
  boost, per-tenant admission quotas, and explicit :class:`QueueFull`
  backpressure;
* :mod:`~repro.service.worker` — warm workers that reuse runtimes and
  cached partition plans across jobs and run every job through the
  checkpoint journal, so a killed worker's job *resumes*;
* :mod:`~repro.service.server` — the ``repro serve`` driver: spawns
  and supervises the worker pool, re-queues orphaned jobs (or
  quarantines poison ones past their retry budget), enforces per-lane
  deadlines, runs TTL gc and the disk-pressure degrade probe, drains;
* :mod:`~repro.service.client` — :class:`ServiceClient`, the library
  API behind ``repro submit / status / result / cancel``.

See ``docs/service.md`` for the architecture and guarantees.
"""

from .client import JobFailed, JobTimeout, ServiceClient
from .server import ServiceServer, serve
from .store import (
    LANES,
    STATES,
    TERMINAL_STATES,
    InvalidTransition,
    JobDeadlineExceeded,
    JobExpired,
    JobNotFound,
    JobStore,
    QueueFull,
    ServiceError,
    TenantQuotaExceeded,
    lane_name,
    lane_priority,
)
from .worker import ServiceWorker, worker_main

__all__ = [
    "LANES",
    "STATES",
    "TERMINAL_STATES",
    "InvalidTransition",
    "JobDeadlineExceeded",
    "JobExpired",
    "JobFailed",
    "JobNotFound",
    "JobStore",
    "JobTimeout",
    "QueueFull",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "ServiceWorker",
    "TenantQuotaExceeded",
    "lane_name",
    "lane_priority",
    "serve",
    "worker_main",
]
