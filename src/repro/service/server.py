"""The serve driver: owns the worker pool, adopts orphans, never jobs.

``repro serve`` runs this loop.  The driver does no detection work
itself — it spawns ``workers`` :mod:`~repro.service.worker` processes,
watches them, and keeps the queue honest:

* on startup it **adopts** the previous incarnation's state: queued
  jobs are simply still queued (the store is durable), and running
  jobs whose workers are gone are re-queued at the front of their lane
  — their checkpoint journals make the re-run a resume;
* a worker that dies (SIGKILL, OOM) is detected by ``Process.is_alive``,
  its jobs are re-queued the same way, and a **replacement worker** is
  spawned — the pool stays at full strength under arbitrary worker
  churn;
* on SIGTERM/SIGINT the driver terminates its workers and exits;
  a SIGKILLed driver leaves workers that notice their parent changed
  and exit on their own (see ``worker.run_forever``), so a restarted
  driver re-adopts a clean field.

``drain=True`` turns the long-lived service into a batch pump: the
driver exits once every job in the store has settled — the hermetic
mode the tests and ``repro bench --service`` drive.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from typing import Callable, Dict, List, Optional

from .store import TERMINAL_STATES, JobStore
from .worker import worker_main

__all__ = ["ServiceServer", "serve"]

#: Seconds between supervision sweeps (worker health, orphan adoption).
_SUPERVISE_POLL_SECONDS = 0.1


class ServiceServer:
    """Supervise a worker pool over one spool directory."""

    def __init__(
        self,
        spool_dir: str,
        workers: int = 2,
        max_depth: Optional[int] = None,
        tenant_max_inflight: Optional[int] = None,
        boost_after: Optional[int] = None,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.spool_dir = spool_dir
        self.n_workers = workers
        self.store = JobStore(spool_dir)
        self.store.configure(
            max_depth=max_depth,
            tenant_max_inflight=tenant_max_inflight,
            boost_after=boost_after,
        )
        self.log = log or (lambda message: None)
        self._procs: Dict[int, multiprocessing.Process] = {}
        self._stop = False
        self.workers_spawned = 0
        self.jobs_adopted = 0

    # -- worker pool ---------------------------------------------------
    def _spawn(self, worker_id: int) -> None:
        # Spawn, not fork: the driver holds an open SQLite connection
        # and fork-inheriting it (or numpy's thread state) into workers
        # invites corruption that would only show under load.
        ctx = multiprocessing.get_context("spawn")
        proc = ctx.Process(
            target=worker_main,
            args=(self.spool_dir, worker_id),
            kwargs={"parent_pid": os.getpid()},
            name=f"repro-service-worker-{worker_id}",
            daemon=False,
        )
        proc.start()
        self._procs[worker_id] = proc
        self.workers_spawned += 1
        self.log(f"worker {worker_id} up (pid {proc.pid})")

    def _supervise_once(self) -> None:
        """One sweep: bury dead workers, adopt their jobs, respawn."""
        for worker_id, proc in list(self._procs.items()):
            if proc.is_alive():
                continue
            proc.join(timeout=0)
            self.log(
                f"worker {worker_id} (pid {proc.pid}) exited "
                f"with code {proc.exitcode}"
            )
            del self._procs[worker_id]
        adopted = self.store.requeue_orphans()
        if adopted:
            self.jobs_adopted += len(adopted)
            self.log(
                f"re-queued {len(adopted)} orphaned job(s): {adopted}"
            )
        if not self._stop:
            for worker_id in range(self.n_workers):
                if worker_id not in self._procs:
                    self._spawn(worker_id)

    def _unsettled(self) -> int:
        stats = self.store.stats()["states"]
        return sum(
            n for state, n in stats.items()
            if state not in TERMINAL_STATES
        )

    def _shutdown_workers(self) -> None:
        for proc in self._procs.values():
            proc.terminate()
        deadline = time.time() + 5.0
        for proc in self._procs.values():
            proc.join(timeout=max(0.0, deadline - time.time()))
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.kill()
                proc.join(timeout=1.0)
        self._procs.clear()

    # -- main loop -----------------------------------------------------
    def run(
        self,
        drain: bool = False,
        max_seconds: Optional[float] = None,
    ) -> int:
        """Supervise until stopped.

        ``drain`` exits (code 0) once every job has settled;
        ``max_seconds`` is a hard wall for both modes (exit code 3 if
        work remains — a liveness backstop, not a happy path).
        """
        started = time.time()
        # Adopt before the first spawn so a restart's re-queued jobs are
        # at their lanes' front when the first claim happens.
        adopted = self.store.requeue_orphans()
        if adopted:
            self.jobs_adopted += len(adopted)
            self.log(
                f"adopted {len(adopted)} in-flight job(s) from a "
                f"previous serve: {adopted}"
            )
        previous = {
            signal.SIGTERM: signal.signal(signal.SIGTERM, self._on_signal),
            signal.SIGINT: signal.signal(signal.SIGINT, self._on_signal),
        }
        try:
            while not self._stop:
                self._supervise_once()
                if drain and self._unsettled() == 0:
                    self.log("queue drained; exiting")
                    return 0
                if (max_seconds is not None
                        and time.time() - started > max_seconds):
                    remaining = self._unsettled()
                    self.log(
                        f"max-seconds reached with {remaining} "
                        "job(s) unsettled"
                    )
                    return 3 if remaining else 0
                time.sleep(_SUPERVISE_POLL_SECONDS)
            self.log("stop requested; shutting down")
            return 0
        finally:
            self._shutdown_workers()
            for signum, handler in previous.items():
                signal.signal(signum, handler)

    def _on_signal(self, signum, frame) -> None:
        self._stop = True

    # -- test/bench conveniences ---------------------------------------
    def worker_pids(self) -> List[int]:
        return [
            proc.pid for proc in self._procs.values()
            if proc.pid is not None and proc.is_alive()
        ]


def serve(
    spool_dir: str,
    workers: int = 2,
    drain: bool = False,
    max_seconds: Optional[float] = None,
    log: Optional[Callable[[str], None]] = None,
    **admission,
) -> int:
    """Run a service over ``spool_dir`` (the ``repro serve`` body)."""
    server = ServiceServer(spool_dir, workers=workers, log=log,
                           **admission)
    return server.run(drain=drain, max_seconds=max_seconds)
