"""The serve driver: owns the worker pool, adopts orphans, never jobs.

``repro serve`` runs this loop.  The driver does no detection work
itself — it spawns ``workers`` :mod:`~repro.service.worker` processes,
watches them, and keeps the queue honest:

* on startup it **adopts** the previous incarnation's state: queued
  jobs are simply still queued (the store is durable), and running
  jobs whose workers are gone are re-queued at the front of their lane
  — their checkpoint journals make the re-run a resume;
* a worker that dies (SIGKILL, OOM) is detected by ``Process.is_alive``,
  its jobs are re-queued the same way, and a **replacement worker** is
  spawned — the pool stays at full strength under arbitrary worker
  churn;
* on SIGTERM/SIGINT the driver terminates its workers and exits;
  a SIGKILLed driver leaves workers that notice their parent changed
  and exit on their own (see ``worker.run_forever``), so a restarted
  driver re-adopts a clean field.

``drain=True`` turns the long-lived service into a batch pump: the
driver exits once every job in the store has settled — the hermetic
mode the tests and ``repro bench --service`` drive.

The supervision sweep is also where the self-healing layer lives:

* orphan adoption respects each job's **retry budget** — a job whose
  workers died ``max_attempts`` times is *quarantined* (terminal,
  journal preserved) instead of re-queued, so one poison job cannot
  crash-loop the pool forever;
* per-lane **queue/run deadlines** are enforced every sweep;
* the **TTL sweeper** tombstones and reaps settled spool directories
  when ``ttl_seconds`` is configured;
* a **disk-pressure probe** checks the spool's free bytes against
  ``disk_low_watermark_bytes`` and flips degrade mode (submissions
  rejected with ``QueueFull(reason="disk")``) before the kernel starts
  returning ENOSPC — and lifts it, with hysteresis, once free space
  recovers past twice the watermark.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from typing import Callable, Dict, List, Optional

from ..recovery.diskguard import free_bytes
from .store import TERMINAL_STATES, JobStore
from .worker import worker_main

__all__ = ["ServiceServer", "serve"]

#: Seconds between supervision sweeps (worker health, orphan adoption).
_SUPERVISE_POLL_SECONDS = 0.1
#: Seconds between the slower housekeeping passes (TTL gc, disk probe).
_HOUSEKEEPING_SECONDS = 1.0


class ServiceServer:
    """Supervise a worker pool over one spool directory."""

    def __init__(
        self,
        spool_dir: str,
        workers: int = 2,
        max_depth: Optional[int] = None,
        tenant_max_inflight: Optional[int] = None,
        boost_after: Optional[int] = None,
        max_attempts: Optional[int] = None,
        requeue_backoff: Optional[float] = None,
        ttl_seconds: Optional[float] = None,
        disk_low_watermark_bytes: Optional[int] = None,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.spool_dir = spool_dir
        self.n_workers = workers
        self.store = JobStore(spool_dir)
        self.store.configure(
            max_depth=max_depth,
            tenant_max_inflight=tenant_max_inflight,
            boost_after=boost_after,
            max_attempts=max_attempts,
            requeue_backoff=requeue_backoff,
            ttl_seconds=ttl_seconds,
            disk_low_watermark_bytes=disk_low_watermark_bytes,
        )
        self.log = log or (lambda message: None)
        self._procs: Dict[int, multiprocessing.Process] = {}
        self._stop = False
        self._last_housekeeping = 0.0
        self.workers_spawned = 0
        self.jobs_adopted = 0
        self.jobs_quarantined = 0
        self.jobs_expired = 0

    # -- worker pool ---------------------------------------------------
    def _spawn(self, worker_id: int) -> None:
        # Spawn, not fork: the driver holds an open SQLite connection
        # and fork-inheriting it (or numpy's thread state) into workers
        # invites corruption that would only show under load.
        ctx = multiprocessing.get_context("spawn")
        proc = ctx.Process(
            target=worker_main,
            args=(self.spool_dir, worker_id),
            kwargs={"parent_pid": os.getpid()},
            name=f"repro-service-worker-{worker_id}",
            daemon=False,
        )
        proc.start()
        self._procs[worker_id] = proc
        self.workers_spawned += 1
        self.log(f"worker {worker_id} up (pid {proc.pid})")

    def _supervise_once(self) -> None:
        """One sweep: bury dead workers, adopt their jobs (or
        quarantine budget-exhausted ones), enforce deadlines, respawn,
        and — at a slower cadence — run TTL gc and the disk probe."""
        for worker_id, proc in list(self._procs.items()):
            if proc.is_alive():
                continue
            proc.join(timeout=0)
            self.log(
                f"worker {worker_id} (pid {proc.pid}) exited "
                f"with code {proc.exitcode}"
            )
            del self._procs[worker_id]
        self._adopt_orphans()
        deadlines = self.store.expire_deadlines()
        if deadlines["queue"]:
            self.log(
                f"failed {len(deadlines['queue'])} job(s) past their "
                f"queue deadline: {deadlines['queue']}"
            )
        if deadlines["run"]:
            self.log(
                f"cancel-requested {len(deadlines['run'])} job(s) past "
                f"their run deadline: {deadlines['run']}"
            )
        now = time.time()
        if now - self._last_housekeeping >= _HOUSEKEEPING_SECONDS:
            self._last_housekeeping = now
            self._housekeeping()
        if not self._stop:
            for worker_id in range(self.n_workers):
                if worker_id not in self._procs:
                    self._spawn(worker_id)

    def _adopt_orphans(self, startup: bool = False) -> None:
        report = self.store.requeue_orphans()
        requeued, quarantined = report["requeued"], report["quarantined"]
        if requeued:
            self.jobs_adopted += len(requeued)
            if startup:
                self.log(
                    f"adopted {len(requeued)} in-flight job(s) from a "
                    f"previous serve: {requeued}"
                )
            else:
                self.log(
                    f"re-queued {len(requeued)} orphaned job(s): "
                    f"{requeued}"
                )
        if quarantined:
            self.jobs_quarantined += len(quarantined)
            self.log(
                f"quarantined {len(quarantined)} poison job(s) past "
                f"their retry budget: {quarantined}"
            )

    def _housekeeping(self) -> None:
        """TTL garbage collection + the disk-pressure probe."""
        swept = self.store.sweep_expired()
        if swept:
            self.jobs_expired += len(swept)
            self.log(f"ttl gc reaped {len(swept)} job(s): {swept}")
        low = int(self.store.config()["disk_low_watermark_bytes"] or 0)
        if low <= 0:
            return
        free = free_bytes(self.spool_dir)
        degraded = self.store.degraded()
        if free < low and degraded is None:
            self.store.set_degraded(
                f"free disk {free} bytes < low watermark {low}",
                kind="disk",
            )
            self.log(
                f"DEGRADED: free disk {free} < watermark {low}; "
                "rejecting new submissions"
            )
        elif (
            degraded is not None
            and degraded.get("kind") == "disk"
            and free >= 2 * low
        ):
            self.store.clear_degraded()
            self.log(
                f"degrade lifted: free disk {free} >= {2 * low}"
            )

    def _unsettled(self) -> int:
        stats = self.store.stats()["states"]
        return sum(
            n for state, n in stats.items()
            if state not in TERMINAL_STATES
        )

    def _shutdown_workers(self) -> None:
        for proc in self._procs.values():
            proc.terminate()
        deadline = time.time() + 5.0
        for proc in self._procs.values():
            proc.join(timeout=max(0.0, deadline - time.time()))
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.kill()
                proc.join(timeout=1.0)
        self._procs.clear()

    # -- main loop -----------------------------------------------------
    def run(
        self,
        drain: bool = False,
        max_seconds: Optional[float] = None,
    ) -> int:
        """Supervise until stopped.

        ``drain`` exits (code 0) once every job has settled;
        ``max_seconds`` is a hard wall for both modes (exit code 3 if
        work remains — a liveness backstop, not a happy path).
        """
        started = time.time()
        # Adopt before the first spawn so a restart's re-queued jobs are
        # at their lanes' front when the first claim happens.
        self._adopt_orphans(startup=True)
        previous = {
            signal.SIGTERM: signal.signal(signal.SIGTERM, self._on_signal),
            signal.SIGINT: signal.signal(signal.SIGINT, self._on_signal),
        }
        try:
            while not self._stop:
                self._supervise_once()
                if drain and self._unsettled() == 0:
                    self.log("queue drained; exiting")
                    return 0
                if (max_seconds is not None
                        and time.time() - started > max_seconds):
                    remaining = self._unsettled()
                    self.log(
                        f"max-seconds reached with {remaining} "
                        "job(s) unsettled"
                    )
                    return 3 if remaining else 0
                time.sleep(_SUPERVISE_POLL_SECONDS)
            self.log("stop requested; shutting down")
            return 0
        finally:
            self._shutdown_workers()
            for signum, handler in previous.items():
                signal.signal(signum, handler)

    def _on_signal(self, signum, frame) -> None:
        self._stop = True

    # -- test/bench conveniences ---------------------------------------
    def worker_pids(self) -> List[int]:
        return [
            proc.pid for proc in self._procs.values()
            if proc.pid is not None and proc.is_alive()
        ]


def serve(
    spool_dir: str,
    workers: int = 2,
    drain: bool = False,
    max_seconds: Optional[float] = None,
    log: Optional[Callable[[str], None]] = None,
    **admission,
) -> int:
    """Run a service over ``spool_dir`` (the ``repro serve`` body)."""
    server = ServiceServer(spool_dir, workers=workers, log=log,
                           **admission)
    return server.run(drain=drain, max_seconds=max_seconds)
