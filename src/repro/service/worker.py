"""The warm service worker: claim, resume-or-run, commit, repeat.

One worker is one long-lived process that loops over
:meth:`~repro.service.store.JobStore.claim`.  Unlike the one-shot CLI,
everything expensive stays warm between jobs:

* the **runtime** (:class:`~repro.mapreduce.ParallelRuntime` when the
  job asks for worker processes, else a serial
  :class:`~repro.mapreduce.LocalRuntime`) is built once per
  ``(nodes, workers, transport)`` shape and reused — its
  ``transport_totals`` keep accumulating across jobs, exactly as the
  dispatch-accounting layer intends;
* the **plan memo** caches a :class:`~repro.streaming.DMTPlanCache`
  per (dataset fingerprint, params, sizing): a repeat submission skips
  the sampling pre-processing job entirely and reuses the cached
  partition plan (the cache retains the mini-bucket histogram, so a
  future drift check has what it needs).

Durability is delegated to the PR-5 checkpoint layer: every job runs
through :func:`~repro.recovery.run_checkpointed` with its journal in
the job's spool directory.  A worker SIGKILLed mid-job leaves a
manifest plus the committed partition prefix; when the serve driver
re-queues the orphan, the next worker *resumes* from the last committed
partition and produces a byte-identical outlier set.

Each finished job leaves two artifacts next to its checkpoint:

* ``result.json`` — the job report (outliers, timings, recovery
  counters), what ``repro result`` prints;
* ``trace.jsonl`` — a :class:`~repro.observability.RunReport` whose
  root ``service_job`` span holds a ``queue_wait`` child (submit →
  claim) next to the checkpointed run span, so ``repro trace`` shows
  queue wait vs run time per job.
"""

from __future__ import annotations

import json
import os
import signal
import time
import traceback
from collections import OrderedDict
from typing import Any, Dict, Optional

import numpy as np

from ..core import Dataset
from ..data.io import finite_row_mask
from ..mapreduce import ClusterConfig, LocalRuntime, ParallelRuntime
from ..metrics import resolve_metric
from ..observability import RunReport, Span
from ..params import OutlierParams
from ..recovery import run_checkpointed
from ..recovery.checkpoint import dataset_fingerprint
from ..recovery.diskguard import (
    DiskPressureError,
    is_disk_full,
    maybe_inject_enospc,
)
from ..streaming import DMTPlanCache
from .store import InvalidTransition, JobDeadlineExceeded, JobStore

__all__ = ["ServiceWorker", "worker_main", "RESULT_FILE", "TRACE_FILE"]

RESULT_FILE = "result.json"
TRACE_FILE = "trace.jsonl"

#: Chaos: when set, a submitted spec may carry ``chaos_kill_at_start``
#: — the worker SIGKILLs itself the moment it picks the job up, before
#: any journal progress.  That is a *poison job*: every retry dies the
#: same way, so only the quarantine budget ends the crash loop.  Gated
#: behind this env var so specs can never kill production workers.
CHAOS_SPEC_ENV = "REPRO_CHAOS_ALLOW_SPEC"

#: Bounded warm-plan memo: datasets come and go, the worker should not.
_PLAN_MEMO_SLOTS = 8

#: Seconds between claim attempts while the queue is empty.
_IDLE_POLL_SECONDS = 0.05

#: Seconds between worker-liveness heartbeats (the workers table the
#: health surface reads) and between job-lease renewals mid-run.
_HEARTBEAT_SECONDS = 1.0


def _job_spec_defaults(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Fill a submitted spec with the detect subcommand's defaults."""
    out = {
        "input": None,
        "with_ids": False,
        "r": None,
        "k": None,
        "strategy": "DMT",
        "detector": "nested_loop",
        "seed": 1,
        "nodes": 4,
        "workers": 0,
        "transport": "pickle",
        "kernel": None,
        "metric": None,
        "n_partitions": None,
        "n_reducers": None,
        # None defers to the lane default at execution time:
        # interactive jobs run the fast tier, batch jobs stay exact.
        "tier": None,
    }
    out.update(spec)
    return out


def load_job_dataset(spec: Dict[str, Any]) -> Dataset:
    """Load the job's CSV exactly as ``repro detect`` would.

    Raises ``ValueError`` on unreadable/empty/non-finite input — the
    worker converts that into a ``failed`` job, not a dead worker.
    """
    path = spec["input"]
    try:
        raw = np.loadtxt(path, delimiter=",", ndmin=2)
    except FileNotFoundError:
        raise ValueError(f"input file not found: {path}") from None
    except (OSError, ValueError) as exc:
        raise ValueError(
            f"could not read {path} as CSV points: {exc}"
        ) from exc
    if raw.shape[0] == 0:
        raise ValueError(f"{path}: no points")
    if spec["with_ids"] and raw.shape[1] < 2:
        raise ValueError(f"{path}: with_ids needs id + coordinates")
    coords = raw[:, 1:] if spec["with_ids"] else raw
    if not bool(finite_row_mask(coords).all()):
        raise ValueError(
            f"{path}: rows with NaN/inf coordinates; clean the input "
            "before submitting (the service never guesses)"
        )
    if spec["with_ids"]:
        return Dataset(raw[:, 1:], raw[:, 0].astype(np.int64))
    return Dataset.from_points(raw)


class ServiceWorker:
    """Claim loop plus the warm state it amortizes across jobs."""

    def __init__(self, spool_dir: str, worker_id: int = 0) -> None:
        self.store = JobStore(spool_dir)
        self.worker_id = worker_id
        self.pid = os.getpid()
        self._runtimes: Dict[tuple, LocalRuntime] = {}
        self._plan_memo: "OrderedDict[tuple, DMTPlanCache]" = (
            OrderedDict()
        )
        self.jobs_run = 0
        self.plan_hits = 0
        self.plan_misses = 0
        self.degraded_events = 0

    # -- warm state ----------------------------------------------------
    def _runtime(self, spec: Dict[str, Any]) -> LocalRuntime:
        key = (
            int(spec["nodes"]), int(spec["workers"]),
            str(spec["transport"]),
        )
        runtime = self._runtimes.get(key)
        if runtime is None:
            cluster = ClusterConfig(nodes=int(spec["nodes"]))
            if int(spec["workers"]) > 0:
                runtime = ParallelRuntime(
                    cluster, workers=int(spec["workers"]),
                    transport=str(spec["transport"]),
                )
            else:
                runtime = LocalRuntime(cluster)
            self._runtimes[key] = runtime
        return runtime

    def _plan_key(self, fingerprint: str, spec: Dict[str, Any],
                  sizing: Dict[str, int]) -> tuple:
        return (
            fingerprint,
            float(spec["r"]), int(spec["k"]),
            str(spec["strategy"]), str(spec["detector"]),
            int(spec["seed"]),
            sizing["n_partitions"], sizing["n_reducers"],
            # The metric changes both the plan shape (pivot balls vs
            # rectangles) and the answer, so it must split the memo.
            spec.get("metric"),
        )

    @staticmethod
    def _sizing(spec: Dict[str, Any], cluster: ClusterConfig
                ) -> Dict[str, int]:
        """Mirror run_checkpointed's sizing defaults so the memo key
        matches what the manifest will record."""
        n_reducers = spec["n_reducers"]
        if n_reducers is None:
            n_reducers = min(cluster.reduce_slots, 64)
        n_partitions = spec["n_partitions"]
        if n_partitions is None:
            n_partitions = 2 * n_reducers
        return {
            "n_partitions": int(n_partitions),
            "n_reducers": int(n_reducers),
        }

    def _memo_get(self, key: tuple) -> Optional[DMTPlanCache]:
        cached = self._plan_memo.get(key)
        if cached is not None:
            self._plan_memo.move_to_end(key)
        return cached

    def _memo_put(self, key: tuple, cache: DMTPlanCache) -> None:
        self._plan_memo[key] = cache
        self._plan_memo.move_to_end(key)
        while len(self._plan_memo) > _PLAN_MEMO_SLOTS:
            self._plan_memo.popitem(last=False)

    # -- one job -------------------------------------------------------
    def run_job(self, job: Dict[str, Any]) -> str:
        """Execute one claimed job to a terminal state; returns it.

        Returns ``"lost"`` (not a job state) when the store refuses the
        settle because ownership moved on — a clock-skewed lease expiry
        re-queued the job under a live worker and someone else finished
        it; the worker shrugs and claims the next job rather than dying
        on :class:`InvalidTransition`.
        """
        job_id = int(job["id"])
        job_dir = self.store.job_dir(job_id)
        os.makedirs(job_dir, exist_ok=True)
        self._maybe_chaos_kill(job)
        try:
            report, trace = self._execute(job, job_dir)
            # Artifacts land before the state flips: a job marked done
            # always has its result.json (a kill in between re-runs the
            # job, which the journal turns into a cheap resume).
            _atomic_write_json(os.path.join(job_dir, RESULT_FILE), report)
            trace.save(os.path.join(job_dir, TRACE_FILE))
        except Exception as exc:
            return self._settle_failure(job, job_dir, exc)
        try:
            final = self.store.finish(
                job_id, "done", result=report, owner_pid=self.pid
            )
        except InvalidTransition:
            return "lost"
        self.jobs_run += 1
        return final

    def _maybe_chaos_kill(self, job: Dict[str, Any]) -> None:
        if not os.environ.get(CHAOS_SPEC_ENV):
            return
        if job["spec"].get("chaos_kill_at_start"):
            os.kill(os.getpid(), signal.SIGKILL)

    def _settle_failure(
        self, job: Dict[str, Any], job_dir: str, exc: Exception
    ) -> str:
        """Map a job exception to its typed failure and settle it."""
        job_id = int(job["id"])
        error = f"{type(exc).__name__}: {exc}"
        failure_kind = None
        if isinstance(exc, JobDeadlineExceeded):
            failure_kind = "deadline"
        elif isinstance(exc, DiskPressureError):
            failure_kind = "disk"
            # Flip the whole service into degrade mode: new submissions
            # are rejected with QueueFull(reason="disk") while anything
            # already running finishes.  The WAL is intact — the journal
            # truncated itself back to its committed prefix.
            self.store.set_degraded(f"disk pressure: {exc}", kind="disk")
            self.degraded_events += 1
        try:
            with open(os.path.join(job_dir, "error.txt"), "w") as f:
                f.write(error + "\n\n" + traceback.format_exc())
            if failure_kind == "disk":
                self._degrade_trace(job, error).save(
                    os.path.join(job_dir, TRACE_FILE)
                )
        except OSError:
            pass  # the disk may genuinely be full; the row has the error
        try:
            return self.store.finish(
                job_id, "failed", error=error, owner_pid=self.pid,
                failure_kind=failure_kind,
            )
        except InvalidTransition:
            return "lost"

    def _degrade_trace(self, job: Dict[str, Any], error: str) -> RunReport:
        """The ``service.degraded`` counter + span the ops runbook
        greps for when the service flips into degrade mode."""
        now = time.time()
        root = Span(
            name=f"service_job:{job['id']}", kind="run",
            start=float(job["submitted_at"]), end=now,
            attrs={
                "job_id": int(job["id"]),
                "tenant": job["tenant"],
                "lane": job["lane_name"],
                "degraded": True,
                "error": error,
            },
        )
        root.children.append(Span(
            name="service.degraded", kind="event", start=now, end=now,
            attrs={"reason": error},
        ))
        return RunReport(
            meta={"job_id": int(job["id"]), "tenant": job["tenant"],
                  "lane": job["lane_name"], "degraded": True},
            counters={"service": {"degraded": 1}},
            counter_totals={"service": 1},
            phase_walls={},
            trace=[root],
        )

    def _execute(self, job: Dict[str, Any], job_dir: str):
        spec = _job_spec_defaults(job["spec"])
        claimed_at = time.time()
        dataset = load_job_dataset(spec)
        params = OutlierParams(r=float(spec["r"]), k=int(spec["k"]))
        cluster = ClusterConfig(nodes=int(spec["nodes"]))
        runtime = self._runtime(spec)
        sizing = self._sizing(spec, cluster)
        fingerprint = dataset_fingerprint(dataset)
        key = self._plan_key(fingerprint, spec, sizing)
        cached = self._memo_get(key)
        plan_cache_hit = cached is not None
        # Lane default: the interactive lane trades nothing but the
        # certification pass for latency (verdicts are tier-invariant),
        # batch jobs stay on the exact path.  An explicit spec tier
        # always wins.  The partition plan is tier-independent, so the
        # warm-plan memo is shared across tiers.
        tier = spec.get("tier")
        if tier is None:
            tier = (
                "fast" if job["lane_name"] == "interactive" else "exact"
            )

        # Lease heartbeat + run-deadline check at every journal commit
        # boundary: run_checkpointed chains this listener after its own
        # commit hook, so a deadline abort never tears a record and a
        # long job can't be mistaken for a dead worker's.
        job_id = int(job["id"])
        config = self.store.config()
        run_deadline = JobStore.lane_deadline(
            config, "run", job["lane_name"]
        )
        deadline_at = (
            None if run_deadline is None
            else float(job["started_at"]) + run_deadline
        )
        last_beat = [0.0]

        def _on_commit(phase: str, task_id, outputs) -> None:
            now_t = time.time()
            if now_t - last_beat[0] >= _HEARTBEAT_SECONDS:
                self.store.heartbeat(job_id, owner_pid=self.pid)
                self.store.worker_heartbeat(
                    jobs_run=self.jobs_run, pid=self.pid
                )
                last_beat[0] = now_t
            if deadline_at is not None and now_t > deadline_at:
                raise JobDeadlineExceeded(
                    f"job {job_id}: ran past lane "
                    f"{job['lane_name']!r} run deadline "
                    f"{run_deadline:g}s"
                )

        t0 = time.perf_counter()
        prev_listener = runtime.commit_listener
        runtime.commit_listener = _on_commit
        try:
            result = run_checkpointed(
                dataset, params, os.path.join(job_dir, "ckpt"),
                strategy=spec["strategy"], detector=spec["detector"],
                runtime=runtime, cluster=cluster,
                n_partitions=sizing["n_partitions"],
                n_reducers=sizing["n_reducers"],
                seed=int(spec["seed"]), kernel=spec["kernel"],
                metric=spec["metric"], tier=tier,
                plan=cached.plan if plan_cache_hit else None,
                manifest_extra={"job_id": int(job["id"]),
                                "tenant": job["tenant"],
                                "input": spec["input"]},
            )
        finally:
            runtime.commit_listener = prev_listener
        run_seconds = time.perf_counter() - t0
        if plan_cache_hit:
            self.plan_hits += 1
            cached.batches_served += 1
        else:
            self.plan_misses += 1
            self._memo_put(
                key, DMTPlanCache.build(result.plan, dataset.points)
            )

        queue_wait = max(0.0, claimed_at - float(job["submitted_at"]))
        counters = result.counters
        counters.incr("service", "jobs_completed")
        counters.incr("service", "queue_wait_us",
                      int(queue_wait * 1e6))
        counters.incr("service", "run_us", int(run_seconds * 1e6))
        counters.incr(
            "service",
            "plan_cache_hits" if plan_cache_hit
            else "plan_cache_misses",
        )
        # Per-tenant rate metric: the counter group carries which
        # tenant this completion belongs to, so traces/bench can
        # aggregate rates without re-reading the store.
        counters.incr(
            "service", f"tenant_jobs_done:{job['tenant']}"
        )
        degraded = self.store.degraded() is not None
        if degraded:
            counters.incr("service", "degraded")

        report = {
            "job_id": int(job["id"]),
            "tenant": job["tenant"],
            "lane": job["lane_name"],
            "attempts": int(job["attempts"]),
            "params": {"r": params.r, "k": params.k},
            "metric": resolve_metric(spec["metric"]).spec(),
            "n_points": dataset.n,
            "outliers": sorted(result.outlier_ids),
            "n_outliers": len(result.outlier_ids),
            "resumed": result.resumed,
            "partitions_replayed": result.replayed_partitions,
            "partitions_executed": result.executed_partitions,
            "plan_cache_hit": plan_cache_hit,
            "queue_wait_seconds": queue_wait,
            "run_seconds": run_seconds,
            "worker_pid": self.pid,
            "degraded": degraded,
            "tier": result.tier,
            "recovery": counters.group("recovery"),
            "service": counters.group("service"),
        }
        tier_counters = counters.group("tier")
        if tier_counters:
            report["tier_counters"] = tier_counters
        trace = self._trace_report(job, report, result, queue_wait,
                                   run_seconds)
        return report, trace

    def _trace_report(self, job, report, result, queue_wait,
                      run_seconds) -> RunReport:
        """A RunReport whose root span splits queue wait from run."""
        submitted = float(job["submitted_at"])
        root = Span(
            name=f"service_job:{job['id']}", kind="run",
            start=submitted,
            attrs={
                "job_id": int(job["id"]),
                "tenant": job["tenant"],
                "lane": job["lane_name"],
                "queue_wait_seconds": queue_wait,
                "run_seconds": run_seconds,
                "plan_cache_hit": report["plan_cache_hit"],
                "resumed": report["resumed"],
                "tier": report["tier"],
                "degraded": report["degraded"],
            },
        )
        wait_span = Span(
            name="queue_wait", kind="phase", start=submitted,
            end=submitted + queue_wait,
            attrs={"seconds": queue_wait, "lane": job["lane_name"]},
        )
        root.children.append(wait_span)
        if result.trace is not None:
            root.add_child(result.trace)
        root.end = time.time()
        counters = result.counters.as_dict()
        return RunReport(
            meta={
                "strategy": job["spec"].get("strategy", "DMT"),
                "r": report["params"]["r"],
                "k": report["params"]["k"],
                "n_outliers": report["n_outliers"],
                "n_jobs": 1,
                "job_id": int(job["id"]),
                "tenant": job["tenant"],
                "lane": job["lane_name"],
            },
            counters=counters,
            counter_totals={
                group: sum(names.values())
                for group, names in counters.items()
            },
            phase_walls={
                f"service_job:{job['id']}": {
                    "queue_wait": queue_wait,
                    "run": run_seconds,
                },
            },
            trace=[root],
        )

    # -- the loop ------------------------------------------------------
    def run_forever(
        self,
        max_jobs: Optional[int] = None,
        drain: bool = False,
        parent_pid: Optional[int] = None,
        poll_seconds: float = _IDLE_POLL_SECONDS,
    ) -> int:
        """Claim and run jobs until told to stop.

        ``drain`` exits once the queue is empty; ``max_jobs`` bounds the
        number of jobs run; ``parent_pid`` makes the worker exit when
        its serve driver disappears (orphaned workers must not keep
        consuming the queue that a restarted driver now owns).
        Returns the number of jobs run.
        """
        ran = 0
        self.store.register_worker(self.worker_id, pid=self.pid)
        last_beat = 0.0
        while True:
            now = time.time()
            if now - last_beat >= _HEARTBEAT_SECONDS:
                self.store.worker_heartbeat(
                    jobs_run=self.jobs_run, pid=self.pid
                )
                last_beat = now
            if max_jobs is not None and ran >= max_jobs:
                return ran
            if parent_pid is not None and os.getppid() != parent_pid:
                return ran
            job = self.store.claim(owner_pid=self.pid)
            if job is None:
                if drain:
                    return ran
                time.sleep(poll_seconds)
                continue
            self.run_job(job)
            ran += 1


def worker_main(
    spool_dir: str,
    worker_id: int,
    parent_pid: Optional[int] = None,
    drain: bool = False,
    max_jobs: Optional[int] = None,
) -> int:
    """Entry point the serve driver spawns worker processes on."""
    worker = ServiceWorker(spool_dir, worker_id=worker_id)
    return worker.run_forever(
        max_jobs=max_jobs, drain=drain, parent_pid=parent_pid
    )


def _atomic_write_json(path: str, payload: Dict[str, Any]) -> None:
    maybe_inject_enospc("result", path)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w") as f:
            json.dump(payload, f, indent=2)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        if is_disk_full(exc):
            raise DiskPressureError(path, "enospc", str(exc)) from exc
        raise
