"""Geometric substrate: hyper-rectangles and uniform grids."""

from .grid import UniformGrid, balanced_factorization
from .rect import Rect, total_bounding

__all__ = ["Rect", "UniformGrid", "balanced_factorization", "total_bounding"]
