"""Uniform grids over a rectangular domain.

Two distinct grids appear in the paper and both are provided by
:class:`UniformGrid`:

* the *partitioning* grid of the DOD framework (Sec. III-A), whose cells are
  shipped to reducers together with their supporting areas, and
* the *mini bucket* grid of the DMT pre-processing job (Sec. V-A), whose
  per-bucket statistics feed the DSHC clustering algorithm.

The Cell-Based detector (Sec. IV-B) uses its own finer internal grid with a
side length tied to ``r``; it builds on the same index arithmetic.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from .rect import Rect

__all__ = ["UniformGrid", "balanced_factorization"]


def balanced_factorization(m: int, ndim: int) -> tuple[int, ...]:
    """Split ``m`` into ``ndim`` factors as close to ``m**(1/ndim)`` as
    possible, rounding the product up so at least ``m`` cells exist.

    Used when a strategy is asked for "about m partitions" of a d-dimensional
    space with an equi-width grid.
    """
    if m < 1:
        raise ValueError("need m >= 1")
    if ndim < 1:
        raise ValueError("need ndim >= 1")
    base = max(1, round(m ** (1.0 / ndim)))
    factors = [base] * ndim
    # Grow one axis at a time until the grid has at least m cells.
    i = 0
    while math.prod(factors) < m:
        factors[i % ndim] += 1
        i += 1
    return tuple(factors)


@dataclass(frozen=True)
class UniformGrid:
    """An equi-width grid of ``shape[i]`` cells along each dimension."""

    domain: Rect
    shape: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.shape) != self.domain.ndim:
            raise ValueError(
                f"grid shape has {len(self.shape)} dims, "
                f"domain has {self.domain.ndim}"
            )
        if any(s < 1 for s in self.shape):
            raise ValueError("every grid dimension needs at least one cell")

    # ------------------------------------------------------------------
    @classmethod
    def with_cells(cls, domain: Rect, n_cells: int) -> "UniformGrid":
        """A grid with roughly ``n_cells`` cells, balanced across dims."""
        return cls(domain, balanced_factorization(n_cells, domain.ndim))

    @property
    def n_cells(self) -> int:
        return math.prod(self.shape)

    @property
    def cell_widths(self) -> tuple[float, ...]:
        return tuple(
            w / s for w, s in zip(self.domain.widths, self.shape)
        )

    # ------------------------------------------------------------------
    # Index arithmetic
    # ------------------------------------------------------------------
    def cell_of(self, point: Sequence[float]) -> tuple[int, ...]:
        """Multi-index of the cell containing ``point`` (clamped to the
        domain so boundary points map to the last cell, not one past it)."""
        idx = []
        for x, lo, w, s in zip(
            point, self.domain.low, self.cell_widths, self.shape
        ):
            if w <= 0:
                idx.append(0)
                continue
            i = int((x - lo) / w)
            idx.append(min(max(i, 0), s - 1))
        return tuple(idx)

    def cells_of(self, points: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`cell_of`: returns an ``(n, d)`` int array."""
        points = np.asarray(points, dtype=float)
        low = np.asarray(self.domain.low)
        widths = np.asarray(self.cell_widths)
        shape = np.asarray(self.shape)
        safe_widths = np.where(widths > 0, widths, 1.0)
        idx = np.floor((points - low) / safe_widths).astype(np.int64)
        idx = np.where(widths > 0, idx, 0)
        return np.clip(idx, 0, shape - 1)

    def flat_index(self, idx: Sequence[int]) -> int:
        """Row-major linearization of a multi-index."""
        flat = 0
        for i, s in zip(idx, self.shape):
            flat = flat * s + i
        return flat

    def flat_indices(self, idx: np.ndarray) -> np.ndarray:
        """Vectorized row-major linearization of an ``(n, d)`` index array."""
        return np.ravel_multi_index(tuple(np.asarray(idx).T), self.shape)

    def unflatten(self, flat: int) -> tuple[int, ...]:
        """Inverse of :meth:`flat_index`."""
        idx = []
        for s in reversed(self.shape):
            idx.append(flat % s)
            flat //= s
        return tuple(reversed(idx))

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def cell_rect(self, idx: Sequence[int]) -> Rect:
        """The box of cell ``idx``."""
        low = []
        high = []
        for i, lo, w, s in zip(
            idx, self.domain.low, self.cell_widths, self.shape
        ):
            if not 0 <= i < s:
                raise IndexError(f"cell index {i} out of range [0, {s})")
            low.append(lo + i * w)
            # Snap the final cell's face to the domain face so the grid tiles
            # the domain exactly despite floating point division.
            high.append(self.domain.high[len(low) - 1] if i == s - 1 else lo + (i + 1) * w)
        return Rect(tuple(low), tuple(high))

    def iter_cells(self) -> Iterator[tuple[int, ...]]:
        """All multi-indices in row-major order."""
        return itertools.product(*(range(s) for s in self.shape))

    def cells_within(self, rect: Rect) -> Iterator[tuple[int, ...]]:
        """Multi-indices of all cells whose box intersects ``rect``.

        This is how the DOD mapper finds the cells for which a point is a
        *support* point: the cells intersecting the ``r``-ball's bounding box
        around the point (equivalently, the cells whose ``r``-expansion
        contains the point, by symmetry of the extension).
        """
        ranges = []
        for lo, hi, dom_lo, w, s in zip(
            rect.low,
            rect.high,
            self.domain.low,
            self.cell_widths,
            self.shape,
        ):
            if w <= 0:
                ranges.append(range(0, 1))
                continue
            first = int(math.floor((lo - dom_lo) / w))
            last = int(math.floor((hi - dom_lo) / w))
            # A rect face lying exactly on a cell boundary belongs to the
            # lower cell for its upper face (closed boxes touch).
            if last * w + dom_lo == hi and last > first:
                last -= 1
            first = min(max(first, 0), s - 1)
            last = min(max(last, 0), s - 1)
            ranges.append(range(first, last + 1))
        return itertools.product(*ranges)

    def neighborhood(
        self, idx: Sequence[int], radius: int
    ) -> Iterator[tuple[int, ...]]:
        """All cells within Chebyshev distance ``radius`` of ``idx``
        (including ``idx`` itself), clipped to the grid.

        The Cell-Based detector's L1 layer is ``radius=1`` and its L2 layer
        is ``radius=ceil(2*sqrt(d))`` minus the L1 layer.
        """
        ranges = [
            range(max(0, i - radius), min(s, i + radius + 1))
            for i, s in zip(idx, self.shape)
        ]
        return itertools.product(*ranges)
