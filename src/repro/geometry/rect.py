"""Axis-aligned hyper-rectangles.

Rectangles are the geometric currency of the whole system: grid cells
(Sec. III-A of the paper), supporting areas (Def. 3.3), mini buckets and
DSHC clusters (Sec. V-A) are all axis-aligned boxes.  ``Rect`` is immutable
and hashable so it can be used as a dictionary key and stored in plans that
are shipped between the (simulated) map and reduce sides.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["Rect"]


@dataclass(frozen=True)
class Rect:
    """A closed axis-aligned box ``[low_i, high_i]`` in each dimension.

    Degenerate boxes (``low_i == high_i``) are allowed; inverted boxes are
    rejected at construction time.
    """

    low: tuple[float, ...]
    high: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.low) != len(self.high):
            raise ValueError(
                f"low has {len(self.low)} dims but high has {len(self.high)}"
            )
        if not self.low:
            raise ValueError("Rect must have at least one dimension")
        for lo, hi in zip(self.low, self.high):
            if lo > hi:
                raise ValueError(f"inverted bounds: low={lo} > high={hi}")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(cls, low: Sequence[float], high: Sequence[float]) -> "Rect":
        """Build a Rect from any pair of sequences (numpy arrays included)."""
        return cls(tuple(float(x) for x in low), tuple(float(x) for x in high))

    @classmethod
    def bounding(cls, points: np.ndarray) -> "Rect":
        """The tight bounding box of an ``(n, d)`` point array."""
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError("need a non-empty (n, d) array of points")
        return cls.from_arrays(points.min(axis=0), points.max(axis=0))

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.low)

    @property
    def widths(self) -> tuple[float, ...]:
        return tuple(hi - lo for lo, hi in zip(self.low, self.high))

    @property
    def area(self) -> float:
        """The d-dimensional volume (the paper calls it ``A(D)``)."""
        return math.prod(self.widths)

    @property
    def center(self) -> tuple[float, ...]:
        return tuple((lo + hi) / 2.0 for lo, hi in zip(self.low, self.high))

    # ------------------------------------------------------------------
    # Point predicates
    # ------------------------------------------------------------------
    def contains(self, point: Sequence[float]) -> bool:
        """Closed-interval membership test for a single point."""
        return all(
            lo <= x <= hi for x, lo, hi in zip(point, self.low, self.high)
        )

    def contains_half_open(self, point: Sequence[float], domain: "Rect") -> bool:
        """Half-open membership ``[low, high)`` except at the domain edge.

        Partition plans tile the domain with rects that share boundaries.
        A point that sits exactly on a shared boundary must belong to exactly
        one partition, so plans use this test: the upper face is exclusive
        unless it coincides with the global ``domain`` upper face.
        """
        for x, lo, hi, dom_hi in zip(point, self.low, self.high, domain.high):
            if x < lo:
                return False
            if x > hi:
                return False
            if x == hi and hi < dom_hi:
                return False
        return True

    def contains_mask(self, points: np.ndarray) -> np.ndarray:
        """Vectorized closed-interval membership for an ``(n, d)`` array."""
        points = np.asarray(points, dtype=float)
        low = np.asarray(self.low)
        high = np.asarray(self.high)
        return np.all((points >= low) & (points <= high), axis=1)

    def contains_mask_half_open(
        self, points: np.ndarray, domain: "Rect"
    ) -> np.ndarray:
        """Vectorized version of :meth:`contains_half_open`."""
        points = np.asarray(points, dtype=float)
        low = np.asarray(self.low)
        high = np.asarray(self.high)
        dom_high = np.asarray(domain.high)
        upper_ok = np.where(
            high < dom_high, points < high, points <= high
        )
        return np.all((points >= low) & upper_ok, axis=1)

    # ------------------------------------------------------------------
    # Rect-vs-rect relations
    # ------------------------------------------------------------------
    def expand(self, r: float) -> "Rect":
        """The ``r``-extension of Def. 3.3: grow every face outward by ``r``.

        The supporting area of a grid cell ``C`` is ``C.expand(r) - C``.
        """
        if r < 0:
            raise ValueError("expansion radius must be non-negative")
        return Rect(
            tuple(lo - r for lo in self.low),
            tuple(hi + r for hi in self.high),
        )

    def clip(self, other: "Rect") -> "Rect":
        """Intersection box, which must be non-empty."""
        low = tuple(max(a, b) for a, b in zip(self.low, other.low))
        high = tuple(min(a, b) for a, b in zip(self.high, other.high))
        return Rect(low, high)

    def intersects(self, other: "Rect") -> bool:
        """Closed-box intersection (touching faces count as intersecting)."""
        return all(
            lo1 <= hi2 and lo2 <= hi1
            for lo1, hi1, lo2, hi2 in zip(
                self.low, self.high, other.low, other.high
            )
        )

    def overlaps_interior(self, other: "Rect") -> bool:
        """Strict interior overlap (touching faces do NOT count)."""
        return all(
            lo1 < hi2 and lo2 < hi1
            for lo1, hi1, lo2, hi2 in zip(
                self.low, self.high, other.low, other.high
            )
        )

    def is_adjacent(self, other: "Rect", tol: float = 1e-9) -> bool:
        """True when the boxes touch (share part of a face) but do not
        overlap in their interiors.

        DSHC only considers *spatially adjacent* clusters for merging, so
        this is the candidate filter used by the AF-tree search operation.
        Corner-only contact is not adjacency: the shared face must have
        positive extent in every other dimension.
        """
        if self.overlaps_interior(other):
            return False
        touching_dims = 0
        for lo1, hi1, lo2, hi2 in zip(
            self.low, self.high, other.low, other.high
        ):
            if lo1 - tol > hi2 or lo2 - tol > hi1:
                return False  # a gap in this dimension: disjoint
            if abs(lo1 - hi2) <= tol or abs(lo2 - hi1) <= tol:
                # Faces meet in this dimension; for true (d-1)-face contact
                # the overlap in every other dimension must be positive,
                # which the surrounding checks enforce.
                touching_dims += 1
        return touching_dims >= 1

    def union_bbox(self, other: "Rect") -> "Rect":
        """The bounding box of the two rects."""
        return Rect(
            tuple(min(a, b) for a, b in zip(self.low, other.low)),
            tuple(max(a, b) for a, b in zip(self.high, other.high)),
        )

    def forms_rectangle_with(self, other: "Rect", tol: float = 1e-9) -> bool:
        """Def. 5.3: can the two boxes be merged into one exact rectangle?

        Requires identical bounds in ``d - 1`` dimensions and exact
        face-to-face contact in the remaining dimension.
        """
        mismatched = [
            i
            for i in range(self.ndim)
            if abs(self.low[i] - other.low[i]) > tol
            or abs(self.high[i] - other.high[i]) > tol
        ]
        if len(mismatched) != 1:
            return False
        i = mismatched[0]
        return (
            abs(self.low[i] - other.high[i]) <= tol
            or abs(self.high[i] - other.low[i]) <= tol
        )

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def distance_to_boundary(self, point: Sequence[float]) -> float:
        """Distance from an *interior* point to the nearest face.

        Used by the Domain baseline: a point further than ``r`` from every
        face of its partition cannot have neighbors in other partitions.
        """
        return min(
            min(x - lo, hi - x)
            for x, lo, hi in zip(point, self.low, self.high)
        )

    def enlargement(self, other: "Rect") -> float:
        """Area growth if this rect were enlarged to cover ``other``.

        This is the classic R-tree ChooseLeaf metric used by the AF-tree.
        """
        return self.union_bbox(other).area - self.area

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dims = ", ".join(
            f"[{lo:g}, {hi:g}]" for lo, hi in zip(self.low, self.high)
        )
        return f"Rect({dims})"


def total_bounding(rects: Iterable[Rect]) -> Rect:
    """Bounding box of a non-empty collection of rects."""
    rects = list(rects)
    if not rects:
        raise ValueError("need at least one rect")
    out = rects[0]
    for rect in rects[1:]:
        out = out.union_bbox(rect)
    return out
