"""Reducer allocation as multi-bin packing (Sec. V-A, step 3).

Balancing estimated partition costs across ``K`` reducers is the classic
multiway number partitioning problem — NP-complete, so the paper adopts a
polynomial approximation ([25]).  We implement the standard two-stage
approximation that family of algorithms builds on:

1. **LPT** (longest processing time first) greedy assignment, which is a
   4/3-approximation of the optimal makespan, followed by
2. **local-search refinement**: repeatedly move or swap partitions between
   the most- and least-loaded bins while the makespan improves.

The allocator is also used by the cardinality-balancing baselines (there
the "cost" of a partition is simply its point count), so Fig. 7's
comparison isolates the *cost-model* difference, not the packer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

__all__ = ["Allocation", "allocate"]


@dataclass(frozen=True)
class Allocation:
    """Result of packing ``len(costs)`` items into ``n_bins`` bins.

    Packing zero items yields the *empty allocation*: no assignment, no
    bins (``bin_loads == ()``), makespan 0.  Its ``imbalance`` is defined
    as 1.0 by convention (nothing is unbalanced), but callers scheduling
    work per bin must consult ``bin_loads`` — an empty allocation means
    *no reducers*, not ``n_bins`` idle ones.
    """

    assignment: tuple[int, ...]  # item index -> bin index
    bin_loads: tuple[float, ...]

    @property
    def makespan(self) -> float:
        return max(self.bin_loads) if self.bin_loads else 0.0

    @property
    def imbalance(self) -> float:
        """max load / mean load (1.0 = perfectly balanced).

        Empty and all-zero-cost allocations report 1.0 vacuously.
        """
        if not self.bin_loads:
            return 1.0
        mean = sum(self.bin_loads) / len(self.bin_loads)
        if mean <= 0:
            return 1.0
        return self.makespan / mean

    def as_table(self) -> Dict[int, int]:
        """``item -> bin`` dict, the shape DictPartitioner expects."""
        return dict(enumerate(self.assignment))


def allocate(
    costs: Sequence[float], n_bins: int, refine_rounds: int = 200
) -> Allocation:
    """Pack items with the given costs into ``n_bins`` bins.

    Returns an :class:`Allocation`; items and bins are identified by index.
    """
    if n_bins < 1:
        raise ValueError("need at least one bin")
    costs = [float(c) for c in costs]
    if any(c < 0 for c in costs):
        raise ValueError("costs must be non-negative")
    if not costs:
        # The empty allocation: an all-pruned input must not come back
        # as "n_bins perfectly balanced empty bins" — downstream code
        # would schedule a phantom reducer per bin.
        return Allocation((), ())
    assignment = [0] * len(costs)
    loads = [0.0] * n_bins

    # Stage 1: LPT greedy.
    order = sorted(range(len(costs)), key=lambda i: costs[i], reverse=True)
    for item in order:
        dest = min(range(n_bins), key=loads.__getitem__)
        assignment[item] = dest
        loads[dest] += costs[item]

    # Stage 2: local search — move or swap to shrink the makespan.
    bins: List[List[int]] = [[] for _ in range(n_bins)]
    for item, dest in enumerate(assignment):
        bins[dest].append(item)
    for _ in range(refine_rounds):
        if not _refine_step(costs, bins, loads):
            break
    for dest, items in enumerate(bins):
        for item in items:
            assignment[item] = dest
    return Allocation(tuple(assignment), tuple(loads))


def _refine_step(
    costs: Sequence[float], bins: List[List[int]], loads: List[float]
) -> bool:
    """One improvement step: True if the makespan strictly decreased."""
    hi = max(range(len(loads)), key=loads.__getitem__)
    lo = min(range(len(loads)), key=loads.__getitem__)
    if hi == lo:
        return False
    makespan = loads[hi]

    # Best single move from hi to lo.
    best_gain = 0.0
    best_move = None
    for item in bins[hi]:
        new_hi = loads[hi] - costs[item]
        new_lo = loads[lo] + costs[item]
        gain = makespan - max(new_hi, new_lo)
        if gain > best_gain:
            best_gain, best_move = gain, ("move", item, None)

    # Best swap between hi and lo.
    for a in bins[hi]:
        for b in bins[lo]:
            delta = costs[a] - costs[b]
            if delta <= 0:
                continue
            new_hi = loads[hi] - delta
            new_lo = loads[lo] + delta
            gain = makespan - max(new_hi, new_lo)
            if gain > best_gain:
                best_gain, best_move = gain, ("swap", a, b)

    if best_move is None:
        return False
    kind, a, b = best_move
    if kind == "move":
        bins[hi].remove(a)
        bins[lo].append(a)
        loads[hi] -= costs[a]
        loads[lo] += costs[a]
    else:
        bins[hi].remove(a)
        bins[lo].remove(b)
        bins[hi].append(b)
        bins[lo].append(a)
        delta = costs[a] - costs[b]
        loads[hi] -= delta
        loads[lo] += delta
    return True
