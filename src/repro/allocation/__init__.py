"""Partition-to-reducer allocation via multi-bin packing."""

from .binpack import Allocation, allocate

__all__ = ["Allocation", "allocate"]
