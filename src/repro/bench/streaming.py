"""Streaming benchmark: incremental micro-batches vs full re-runs.

``repro bench --stream`` plays an append-heavy workload: an initial bulk
load followed by spatially-local micro-batches (streams arrive with
locality — a sensor region, a shard, a time-ordered file).  After every
batch it measures

* the **incremental** wall time (:class:`~repro.streaming.
  StreamingDetector` re-detecting only the dirty partitions), and
* the **full re-run** wall time (a from-scratch
  :func:`~repro.core.detect_outliers` over every point seen so far),

asserts the two outlier sets are identical, and reports per-batch dirty
-partition ratios plus the cumulative speedup.  Outlier hashes and dirty
ratios are deterministic; wall times and the speedup are machine-local.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List

import numpy as np

from ..core import detect_outliers
from ..data import region_dataset
from ..mapreduce import ClusterConfig, LocalRuntime, ParallelRuntime
from ..params import OutlierParams
from ..streaming import StreamingDetector
from .harness import SCHEMA_VERSION, _outliers_hash

__all__ = ["StreamBenchConfig", "run_stream_bench"]


@dataclass(frozen=True)
class StreamBenchConfig:
    """Knobs of one streaming benchmark invocation."""

    label: str = "stream"
    region: str = "MA"
    base_n: int = 6_000
    r: float = 2.0
    k: int = 12
    strategy: str = "DMT"
    detector: str = "nested_loop"
    #: Fraction of the dataset bulk-loaded before the micro-batches.
    initial_fraction: float = 0.7
    n_batches: int = 6
    workers: int = 0
    transport: str = "pickle"
    n_partitions: int = 16
    n_reducers: int = 8
    drift_threshold: float = 0.25
    seed: int = 7
    nodes: int = 4

    @classmethod
    def quick(cls, **overrides) -> "StreamBenchConfig":
        """Small workload for the CI smoke invocation."""
        defaults = dict(
            label="stream_smoke", base_n=1_500, n_batches=3,
            n_partitions=8, n_reducers=4,
        )
        defaults.update(overrides)
        return cls(**defaults)


def _make_runtime(config: StreamBenchConfig):
    cluster = ClusterConfig(nodes=config.nodes)
    if config.workers > 0:
        return cluster, ParallelRuntime(
            cluster, workers=config.workers, transport=config.transport
        )
    return cluster, LocalRuntime(cluster)


def run_stream_bench(
    config: StreamBenchConfig, log=None
) -> Dict[str, Any]:
    """Run the append-heavy workload; return the report payload."""
    dataset = region_dataset(
        config.region, base_n=config.base_n, seed=config.seed
    )
    params = OutlierParams(r=config.r, k=config.k)
    n_initial = int(dataset.n * config.initial_fraction)
    # Micro-batches are contiguous x-slabs of the appended remainder:
    # locality is what makes incremental detection touch few partitions.
    rest = np.arange(n_initial, dataset.n)
    rest = rest[np.argsort(dataset.points[rest, 0], kind="stable")]
    batches = [
        idx for idx in np.array_split(rest, config.n_batches) if idx.size
    ]
    if log is not None:
        log(
            f"stream bench '{config.label}': {config.region} "
            f"n={dataset.n} initial={n_initial} "
            f"batches={len(batches)} r={config.r} k={config.k}"
        )

    cluster, runtime = _make_runtime(config)
    detector = StreamingDetector(
        params,
        strategy=config.strategy,
        detector=config.detector,
        runtime=runtime,
        cluster=cluster,
        n_partitions=config.n_partitions,
        n_reducers=config.n_reducers,
        drift_threshold=config.drift_threshold,
        seed=config.seed,
    )
    detector.ingest(dataset.subset(np.arange(n_initial)))

    rows: List[Dict[str, Any]] = []
    seen = np.arange(n_initial)
    incremental_total = 0.0
    full_total = 0.0
    for batch_no, idx in enumerate(batches, start=1):
        report = detector.ingest(dataset.subset(idx))
        seen = np.concatenate([seen, idx])
        prefix = dataset.subset(seen)
        _, full_runtime = _make_runtime(config)
        start = time.perf_counter()
        full = detect_outliers(
            prefix, params,
            strategy=config.strategy, detector=config.detector,
            n_partitions=config.n_partitions,
            n_reducers=config.n_reducers,
            cluster=cluster, runtime=full_runtime, seed=config.seed,
        )
        full_wall = time.perf_counter() - start
        identical = detector.outlier_ids == full.outlier_ids
        incremental_total += report.wall_seconds
        full_total += full_wall
        rows.append({
            "batch": batch_no,
            "batch_points": int(idx.size),
            "points_seen": int(seen.size),
            "dirty_partitions": report.dirty_partitions,
            "total_partitions": report.total_partitions,
            "dirty_ratio": report.dirty_ratio,
            "cache_hit": report.cache_hit,
            "invalidation_reason": report.invalidation_reason,
            "incremental_wall_seconds": report.wall_seconds,
            "full_rerun_wall_seconds": full_wall,
            "speedup_vs_full": (
                full_wall / report.wall_seconds
                if report.wall_seconds > 0 else 0.0
            ),
            "n_outliers": len(report.outlier_ids),
            "outliers_hash": _outliers_hash(report.outlier_ids),
            "identical_outliers": identical,
        })
        if log is not None:
            log(
                f"  batch {batch_no}: +{idx.size} pts, dirty "
                f"{report.dirty_partitions}/{report.total_partitions} "
                f"({report.dirty_ratio:.0%}), incr "
                f"{report.wall_seconds:.3f}s vs full {full_wall:.3f}s, "
                f"identical={identical}"
            )

    hits = detector.counters.get("streaming", "plan_cache_hits")
    served = detector.counters.get("streaming", "batches")
    cached_rows = [r for r in rows if r["cache_hit"]]
    return {
        "schema_version": SCHEMA_VERSION,
        "label": config.label,
        "mode": "stream",
        "workload": {
            "region": config.region,
            "n_points": dataset.n,
            "n_initial": n_initial,
            "n_batches": len(batches),
            "r": config.r,
            "k": config.k,
            "strategy": config.strategy,
            "n_partitions": config.n_partitions,
            "n_reducers": config.n_reducers,
            "workers": config.workers,
            "transport": config.transport,
            "drift_threshold": config.drift_threshold,
            "seed": config.seed,
        },
        "batches": rows,
        "derived": {
            "identical_outliers": all(
                r["identical_outliers"] for r in rows
            ),
            "incremental_total_seconds": incremental_total,
            "full_rerun_total_seconds": full_total,
            "speedup_vs_full": (
                full_total / incremental_total
                if incremental_total > 0 else 0.0
            ),
            "mean_dirty_ratio_on_hits": (
                sum(r["dirty_ratio"] for r in cached_rows)
                / len(cached_rows) if cached_rows else None
            ),
            "plan_cache_hit_rate": hits / served if served else 0.0,
            "streaming_counters": detector.counters.group("streaming"),
        },
    }
