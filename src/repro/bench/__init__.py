"""Performance benchmark harness (``repro bench``).

Runs the fixed serial-vs-parallel x transport x detector x kernel
matrix over a fig8-scale workload and emits ``BENCH_<label>.json`` —
the artifact that seeds the repo's perf trajectory and backs the CI
regression gate.
"""

from .harness import (
    KERNEL_SPEEDUP_FLOOR,
    BenchConfig,
    check_against,
    load_bench,
    run_bench,
    save_bench,
)
from .recovery import RecoveryBenchConfig, run_recovery_bench
from .service import ServiceBenchConfig, run_service_bench
from .streaming import StreamBenchConfig, run_stream_bench

__all__ = [
    "BenchConfig",
    "KERNEL_SPEEDUP_FLOOR",
    "RecoveryBenchConfig",
    "ServiceBenchConfig",
    "StreamBenchConfig",
    "run_bench",
    "run_recovery_bench",
    "run_service_bench",
    "run_stream_bench",
    "check_against",
    "save_bench",
    "load_bench",
]
