"""Recovery benchmark: what does resuming a killed run actually save?

``repro bench --recovery`` measures the cost model of the checkpoint
layer.  For one workload it runs:

* an **uninterrupted** checkpointed detection (the baseline wall, which
  also prices the journal's per-commit fsync against a plain
  :func:`~repro.core.detect_outliers` run — the *journal overhead*);
* for each crash fraction ``f``: a run aborted after ``f`` of the
  partition commits, then a **resume** of the same checkpoint directory
  — the resumed wall over the baseline wall is the *resume overhead*,
  and the replayed-partition share is the *work saved*.

Outlier hashes, partition counts, and identical-result flags are
deterministic; wall times and the derived ratios are machine-local.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Dict, List

from ..core import detect_outliers
from ..data import region_dataset
from ..mapreduce import ClusterConfig, LocalRuntime, ParallelRuntime
from ..params import OutlierParams
from ..recovery import SimulatedCrash, run_checkpointed
from .harness import SCHEMA_VERSION, _outliers_hash

__all__ = ["RecoveryBenchConfig", "run_recovery_bench"]


@dataclass(frozen=True)
class RecoveryBenchConfig:
    """Knobs of one recovery benchmark invocation."""

    label: str = "recovery"
    region: str = "MA"
    base_n: int = 6_000
    r: float = 2.0
    k: int = 12
    strategy: str = "DMT"
    detector: str = "nested_loop"
    n_partitions: int = 16
    n_reducers: int = 8
    #: Fractions of partition commits after which the driver "crashes".
    crash_fractions: tuple = (0.25, 0.5, 0.75)
    workers: int = 0
    transport: str = "pickle"
    seed: int = 7
    nodes: int = 4

    @classmethod
    def quick(cls, **overrides) -> "RecoveryBenchConfig":
        """Small workload for the CI smoke invocation."""
        defaults = dict(
            label="recovery_smoke", base_n=1_500,
            n_partitions=8, n_reducers=4, crash_fractions=(0.5,),
        )
        defaults.update(overrides)
        return cls(**defaults)


def _make_runtime(config: RecoveryBenchConfig):
    cluster = ClusterConfig(nodes=config.nodes)
    if config.workers > 0:
        return cluster, ParallelRuntime(
            cluster, workers=config.workers, transport=config.transport
        )
    return cluster, LocalRuntime(cluster)


def _checkpointed(config, dataset, params, checkpoint_dir, **kwargs):
    cluster, runtime = _make_runtime(config)
    return run_checkpointed(
        dataset, params, checkpoint_dir,
        strategy=config.strategy, detector=config.detector,
        runtime=runtime, cluster=cluster,
        n_partitions=config.n_partitions,
        n_reducers=config.n_reducers,
        seed=config.seed, **kwargs,
    )


def run_recovery_bench(
    config: RecoveryBenchConfig, log=None
) -> Dict[str, Any]:
    """Run the crash/resume matrix; return the report payload."""
    dataset = region_dataset(
        config.region, base_n=config.base_n, seed=config.seed
    )
    params = OutlierParams(r=config.r, k=config.k)
    if log is not None:
        log(
            f"recovery bench '{config.label}': {config.region} "
            f"n={dataset.n} partitions={config.n_partitions} "
            f"r={config.r} k={config.k}"
        )

    workdir = tempfile.mkdtemp(prefix="repro-recovery-bench-")
    try:
        # Plain run: the no-durability reference wall.
        cluster, runtime = _make_runtime(config)
        start = time.perf_counter()
        plain = detect_outliers(
            dataset, params,
            strategy=config.strategy, detector=config.detector,
            n_partitions=config.n_partitions,
            n_reducers=config.n_reducers,
            cluster=cluster, runtime=runtime, seed=config.seed,
        )
        plain_wall = time.perf_counter() - start

        # Uninterrupted checkpointed run: plain + journal overhead.
        base_dir = os.path.join(workdir, "baseline")
        start = time.perf_counter()
        baseline = _checkpointed(config, dataset, params, base_dir)
        baseline_wall = time.perf_counter() - start
        n_parts = baseline.n_partitions
        if log is not None:
            log(
                f"  uninterrupted: plain {plain_wall:.3f}s, "
                f"journaled {baseline_wall:.3f}s "
                f"({n_parts} partition commits)"
            )

        rows: List[Dict[str, Any]] = []
        for fraction in config.crash_fractions:
            commits = max(1, min(n_parts - 1, int(n_parts * fraction)))
            crash_dir = os.path.join(workdir, f"crash-{commits}")
            start = time.perf_counter()
            try:
                _checkpointed(
                    config, dataset, params, crash_dir,
                    abort_after_commits=commits,
                )
                raise AssertionError(
                    "crash injection did not fire"
                )  # pragma: no cover
            except SimulatedCrash:
                pass
            crashed_wall = time.perf_counter() - start
            start = time.perf_counter()
            resumed = _checkpointed(config, dataset, params, crash_dir)
            resume_wall = time.perf_counter() - start
            identical = resumed.outlier_ids == baseline.outlier_ids
            rows.append({
                "crash_fraction": fraction,
                "commits_before_crash": commits,
                "partitions_replayed":
                    len(resumed.replayed_partitions),
                "partitions_executed":
                    len(resumed.executed_partitions),
                "crashed_wall_seconds": crashed_wall,
                "resume_wall_seconds": resume_wall,
                "resume_over_full_ratio": (
                    resume_wall / baseline_wall
                    if baseline_wall > 0 else 0.0
                ),
                "work_saved_fraction": (
                    len(resumed.replayed_partitions) / n_parts
                    if n_parts else 0.0
                ),
                "identical_outliers": identical,
                "outliers_hash": _outliers_hash(resumed.outlier_ids),
            })
            if log is not None:
                log(
                    f"  crash@{commits}/{n_parts} commits: resume "
                    f"{resume_wall:.3f}s vs full {baseline_wall:.3f}s, "
                    f"replayed {len(resumed.replayed_partitions)}, "
                    f"identical={identical}"
                )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    return {
        "schema_version": SCHEMA_VERSION,
        "label": config.label,
        "mode": "recovery",
        "workload": {
            "region": config.region,
            "n_points": dataset.n,
            "r": config.r,
            "k": config.k,
            "strategy": config.strategy,
            "n_partitions": config.n_partitions,
            "n_reducers": config.n_reducers,
            "workers": config.workers,
            "transport": config.transport,
            "seed": config.seed,
        },
        "crashes": rows,
        "derived": {
            "identical_outliers": all(
                r["identical_outliers"] for r in rows
            ) and baseline.outlier_ids == plain.outlier_ids,
            "n_partition_commits": n_parts,
            "outliers_hash": _outliers_hash(baseline.outlier_ids),
            "plain_wall_seconds": plain_wall,
            "journaled_wall_seconds": baseline_wall,
            "journal_overhead_ratio": (
                baseline_wall / plain_wall if plain_wall > 0 else 0.0
            ),
            "mean_resume_over_full_ratio": (
                sum(r["resume_over_full_ratio"] for r in rows)
                / len(rows) if rows else 0.0
            ),
        },
    }
