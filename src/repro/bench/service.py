"""Service benchmark: submit-to-result latency under concurrent tenants.

``repro bench --service`` stands up a real service — spool, SQLite
queue, a worker-process pool — in a temp directory, submits a burst of
jobs from several tenants across both lanes, drains it, and measures
what a tenant actually experiences:

* **submit -> result latency** per job, split into queue wait vs run
  time (the job trace's two phases);
* **throughput** (settled jobs per second of drain wall);
* **plan-cache effectiveness**: all jobs share one dataset, so every
  job after the first that lands on an already-warm worker should skip
  the planning job;
* **exactness**: every job's outlier set must equal a one-shot
  ``detect_outliers`` on the same input — the service tier must be
  observationally identical to the engine it wraps.

Outlier hashes and job counts are deterministic; walls, latencies, and
the cache hit rate (it depends on which worker claims which job) are
machine-local.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Dict, List

import numpy as np

from ..core import Dataset, detect_outliers
from ..data import region_dataset
from ..params import OutlierParams
from ..service import ServiceClient, ServiceServer
from .harness import SCHEMA_VERSION, _outliers_hash

__all__ = ["ServiceBenchConfig", "run_service_bench"]


def _nearest_rank(values: List[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, int(np.ceil(q * len(ordered))))
    return float(ordered[rank - 1])


@dataclass(frozen=True)
class ServiceBenchConfig:
    """Knobs of one service benchmark invocation."""

    label: str = "service"
    region: str = "MA"
    base_n: int = 8_000
    r: float = 2.0
    k: int = 12
    strategy: str = "DMT"
    detector: str = "nested_loop"
    tenants: int = 3
    jobs_per_tenant: int = 4
    workers: int = 2
    seed: int = 7
    #: Every ``interactive_every``-th job goes to the interactive lane.
    interactive_every: int = 3
    max_wall_seconds: float = 300.0

    @classmethod
    def quick(cls, **overrides) -> "ServiceBenchConfig":
        defaults = dict(
            label="service_smoke", base_n=1_200, tenants=3,
            jobs_per_tenant=2,
        )
        defaults.update(overrides)
        return cls(**defaults)


def run_service_bench(
    config: ServiceBenchConfig, log=None
) -> Dict[str, Any]:
    """Run the multi-tenant burst; return the report payload."""
    dataset = region_dataset(
        config.region, base_n=config.base_n, seed=config.seed
    )
    params = OutlierParams(r=config.r, k=config.k)
    oracle = detect_outliers(
        Dataset(dataset.points, dataset.ids), params,
        strategy=config.strategy, detector=config.detector,
        seed=config.seed,
    )
    oracle_hash = _outliers_hash(oracle.outlier_ids)

    with tempfile.TemporaryDirectory(prefix="repro-svc-bench-") as tmp:
        csv_path = os.path.join(tmp, "points.csv")
        np.savetxt(csv_path, dataset.points, delimiter=",", fmt="%.10g")
        spool = os.path.join(tmp, "spool")
        client = ServiceClient(spool)
        n_jobs = config.tenants * config.jobs_per_tenant
        client.store.configure(
            max_depth=max(n_jobs + 4, 16),
            tenant_max_inflight=config.jobs_per_tenant + 2,
        )

        if log is not None:
            log(
                f"service bench '{config.label}': {config.region} "
                f"n={dataset.n} tenants={config.tenants} x "
                f"{config.jobs_per_tenant} jobs, "
                f"{config.workers} workers"
            )

        submitted_at: Dict[int, float] = {}
        job_ids: List[int] = []
        for index in range(n_jobs):
            tenant = f"tenant-{index % config.tenants}"
            lane = (
                "interactive"
                if index % config.interactive_every == 0 else "batch"
            )
            job_id = client.submit(
                csv_path, r=config.r, k=config.k, tenant=tenant,
                lane=lane, strategy=config.strategy,
                detector=config.detector, seed=config.seed,
            )
            submitted_at[job_id] = time.perf_counter()
            job_ids.append(job_id)

        server = ServiceServer(spool, workers=config.workers)
        t0 = time.perf_counter()
        exit_code = server.run(
            drain=True, max_seconds=config.max_wall_seconds
        )
        drain_wall = time.perf_counter() - t0
        if exit_code != 0:
            raise RuntimeError(
                f"service bench failed to drain (exit {exit_code})"
            )

        # Per-tenant rates straight from the store's counter surface —
        # the same numbers ``repro status --tenant`` renders, recorded
        # here so a bench artifact documents the multi-tenant shape.
        tenant_rates = client.tenant_stats()

        rows: List[Dict[str, Any]] = []
        plan_hits = 0
        identical = True
        for job_id in job_ids:
            report = client.result(job_id, timeout=5.0)
            settled = client.status(job_id)
            latency = (
                float(settled["finished_at"]) - float(settled["submitted_at"])
            )
            identical &= (
                _outliers_hash(report["outliers"]) == oracle_hash
            )
            plan_hits += int(report["plan_cache_hit"])
            rows.append({
                "job_id": job_id,
                "tenant": report["tenant"],
                "lane": report["lane"],
                "tier": report.get("tier", "exact"),
                "latency_seconds": latency,
                "queue_wait_seconds": report["queue_wait_seconds"],
                "run_seconds": report["run_seconds"],
                "plan_cache_hit": report["plan_cache_hit"],
                "outliers_hash": _outliers_hash(report["outliers"]),
            })
            if log is not None:
                log(
                    f"  job {job_id} [{report['tenant']}/"
                    f"{report['lane']}] tier={report.get('tier')} "
                    f"latency {latency:.3f}s (wait "
                    f"{report['queue_wait_seconds']:.3f}s, run "
                    f"{report['run_seconds']:.3f}s)"
                )
        client.close()

    latencies = [row["latency_seconds"] for row in rows]
    waits = [row["queue_wait_seconds"] for row in rows]
    # Per-lane run time (not latency: queue wait is burst-order noise).
    # The interactive lane defaults to the fast tier, so this is the
    # tier's end-to-end payoff measured through the whole service stack.
    # Plan-cold jobs are excluded when every lane has a warm run: the
    # plan memo is tier-independent and shared, and lane priority means
    # each worker's first (cache-filling) job is always interactive —
    # charging the one-time fill to that lane would just measure the
    # scheduler, not the tier.
    lane_run: Dict[str, List[float]] = {}
    warm_run: Dict[str, List[float]] = {}
    for row in rows:
        lane_run.setdefault(row["lane"], []).append(row["run_seconds"])
        if row["plan_cache_hit"]:
            warm_run.setdefault(row["lane"], []).append(
                row["run_seconds"]
            )
    if set(warm_run) == set(lane_run):
        lane_run = warm_run
    lane_mean_run = {
        lane: sum(vals) / len(vals)
        for lane, vals in sorted(lane_run.items())
    }
    interactive_speedup = None
    if lane_mean_run.get("interactive") and lane_mean_run.get("batch"):
        interactive_speedup = (
            lane_mean_run["batch"] / lane_mean_run["interactive"]
        )
    return {
        "schema_version": SCHEMA_VERSION,
        "label": config.label,
        "workload": {
            "region": config.region,
            "n_points": dataset.n,
            "r": config.r,
            "k": config.k,
            "strategy": config.strategy,
            "tenants": config.tenants,
            "jobs_per_tenant": config.jobs_per_tenant,
            "workers": config.workers,
            "seed": config.seed,
        },
        "jobs": rows,
        "derived": {
            # Deterministic:
            "n_jobs": len(rows),
            "identical_outliers": bool(identical),
            "oracle_outliers_hash": oracle_hash,
            # Machine-local:
            "drain_wall_seconds": drain_wall,
            "jobs_per_second": (
                len(rows) / drain_wall if drain_wall > 0 else 0.0
            ),
            "mean_latency_seconds": (
                sum(latencies) / len(latencies) if latencies else 0.0
            ),
            "max_latency_seconds": max(latencies, default=0.0),
            "mean_queue_wait_seconds": (
                sum(waits) / len(waits) if waits else 0.0
            ),
            "queue_wait_p50_seconds": _nearest_rank(waits, 0.50),
            "queue_wait_p95_seconds": _nearest_rank(waits, 0.95),
            # Per-tenant submitted/done/failed/quarantined counts and
            # queue-wait percentiles (repro status --tenant's payload).
            "tenant_rates": tenant_rates,
            "plan_cache_hit_rate": (
                plan_hits / len(rows) if rows else 0.0
            ),
            "lane_mean_run_seconds": lane_mean_run,
            "interactive_speedup": interactive_speedup,
        },
    }
