"""Benchmark matrix runner behind ``repro bench``.

The matrix is fixed so results stay comparable run over run: for each
detector, one serial (in-process) run plus one parallel run per dispatch
transport, each repeated ``repeats`` times with the **minimum** wall time
reported (min-of-N is the standard noise filter for microbenchmarks —
the minimum is the run least disturbed by the OS).

Each ``BENCH_<label>.json`` carries three kinds of numbers:

* **deterministic** — outlier count + SHA-256 of the sorted outlier ids,
  ``distance_evals``, cost units.  Identical on every machine; the CI
  gate compares them exactly, and any divergence between transports is a
  correctness bug, not a perf regression.
* **machine-local walls** — min/all wall seconds and throughput.  Never
  compared across machines.
* **same-machine ratios** — per-task dispatch overhead per transport,
  the pickle/shm overhead ratio, and the python/numpy kernel speedup
  ratio.  Dimensionless and roughly portable, so the CI gate checks
  them against the checked-in baseline with a one-sided tolerance (a
  *faster* shm path or numpy kernel is never a regression).  The
  kernel ratio additionally has an absolute floor
  (:data:`KERNEL_SPEEDUP_FLOOR`): the vectorized backend must stay at
  least that many times faster than the scalar oracle on the
  reduce-side detection work it vectorizes.

The matrix's kernel axis runs on the **serial** cells only (one per
backend in ``kernels``): kernels change per-task arithmetic, not
dispatch, so serial runs isolate the effect while the parallel cells
stay on the default backend.

The **tier axis** works the same way: non-exact tiers in ``tiers`` add
one serial cell each per detector on the default kernel.  Tier cells
carry two extra deterministic fields — ``tier_residue_fraction`` (the
share of points the certification pass could not clear) and
``tier_certification_bound`` — and their ``outliers_hash`` must equal
the exact cells' (verdicts are tier-invariant), which the
``identical_outliers`` gate enforces.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from typing import Any, Dict, List

from ..core import detect_outliers
from ..data import region_dataset
from ..detectors import METRIC_GENERIC_DETECTORS
from ..kernels import make_kernel
from ..mapreduce import (
    ClusterConfig,
    Counters,
    LocalRuntime,
    ParallelRuntime,
)
from ..params import OutlierParams

__all__ = [
    "BenchConfig",
    "KERNEL_SPEEDUP_FLOOR",
    "run_bench",
    "check_against",
    "save_bench",
    "load_bench",
]

SCHEMA_VERSION = 2

#: Absolute one-sided floor for the serial python/numpy per-task wall
#: ratio: the vectorized kernel must stay at least this many times
#: faster than the scalar oracle on reduce-side detection work.
KERNEL_SPEEDUP_FLOOR = 3.0


@dataclass(frozen=True)
class BenchConfig:
    """One benchmark invocation's knobs.

    The defaults are the fig8-scale acceptance workload: the MA region at
    base_n=6000 (the scale=1.0 setting of
    :mod:`repro.experiments.fig8`), r=2.0 / k=12, four workers.
    ``quick()`` shrinks everything for the CI smoke gate.
    """

    label: str = "fig8"
    region: str = "MA"
    base_n: int = 6_000
    r: float = 2.0
    k: int = 12
    strategy: str = "DMT"
    detectors: tuple = ("nested_loop", "cell_based", "proximity_graph")
    transports: tuple = ("pickle", "shm")
    #: Distance backends for the serial kernel axis; parallel cells all
    #: run on the last entry (the production default).
    kernels: tuple = ("python", "numpy")
    #: Detection tiers for the serial tier axis; everything beyond
    #: "exact" joins the workload identity (so pre-existing exact-only
    #: baselines keep their workload dict byte-for-byte).
    tiers: tuple = ("exact", "fast")
    workers: int = 4
    repeats: int = 5
    n_partitions: int = 16
    n_reducers: int = 8
    seed: int = 7
    nodes: int = 4
    #: Distance metric spec; "euclidean" is the default and is omitted
    #: from the workload dict so pre-existing baselines compare clean.
    metric: str = "euclidean"
    #: HDFS block size in records — one map task per block, so this sets
    #: map-side parallelism (the paper ties map tasks to block count).
    block_records: int = 250

    @classmethod
    def quick(cls, **overrides) -> "BenchConfig":
        """Small matrix for the CI regression gate (~seconds, not minutes)."""
        defaults = dict(
            label="smoke", base_n=1_500, detectors=("nested_loop",),
            workers=2, repeats=2, n_partitions=8, n_reducers=4,
            block_records=250, tiers=("exact",),
        )
        defaults.update(overrides)
        return cls(**defaults)


def _outliers_hash(outlier_ids) -> str:
    blob = ",".join(str(i) for i in sorted(outlier_ids)).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def _merged_counters(result) -> Counters:
    merged = Counters()
    for job in result.run.jobs:
        merged.merge(job.counters)
    return merged


def _run_cell(
    config: BenchConfig,
    dataset,
    detector: str,
    runtime_kind: str,
    transport: str,
    kernel: str,
    log=None,
    tier: str = "exact",
) -> Dict[str, Any]:
    """One matrix cell: ``repeats`` detection runs, min-of-N wall."""
    params = OutlierParams(r=config.r, k=config.k)
    walls: List[float] = []
    detect_walls: List[float] = []
    reduce_walls: List[float] = []
    kernel_walls: List[float] = []
    tstats_all: List[Dict[str, Any]] = []
    last = None
    for _ in range(config.repeats):
        cluster = ClusterConfig(
            nodes=config.nodes,
            hdfs_block_records=config.block_records,
        )
        if runtime_kind == "serial":
            runtime = LocalRuntime(cluster)
            # A shared Kernel instance: serial tasks run in-process, so
            # every partition's scan accumulates into one wall_seconds —
            # backend-body time only, the kernel-speedup numerator.
            # (Parallel tasks run in worker processes, where instance
            # state does not come back; those cells pass the name.)
            kernel_spec = make_kernel(kernel)
        else:
            runtime = ParallelRuntime(
                cluster, workers=config.workers, transport=transport
            )
            kernel_spec = kernel
        start = time.perf_counter()
        last = detect_outliers(
            dataset, params,
            strategy=config.strategy, detector=detector,
            n_partitions=config.n_partitions,
            n_reducers=config.n_reducers,
            cluster=cluster, runtime=runtime, seed=config.seed,
            kernel=kernel_spec,
            metric=None if config.metric == "euclidean" else config.metric,
            tier=tier,
        )
        walls.append(time.perf_counter() - start)
        detect_walls.append(last.detect_wall)
        reduce_walls.append(sum(last.run.reduce_task_costs("wall")))
        if runtime_kind == "serial":
            kernel_walls.append(kernel_spec.wall_seconds)
        # The runtime accumulates dispatch stats over *every* job it
        # ran — planning included — which per-job results undercount
        # (the planning JobResult is discarded by the strategy).
        totals = dict(getattr(runtime, "transport_totals", None) or {})
        if totals:
            tstats_all.append(totals)
    counters = _merged_counters(last)
    # Counters and outliers are deterministic across repeats; dispatch
    # timing is not, so keep the min-dispatch repeat (same min-of-N
    # noise filter as the wall times — byte/task counts are identical
    # in every repeat, only the seconds differ).
    tstats = (
        min(tstats_all, key=lambda s: s["dispatch_seconds"])
        if tstats_all else {}
    )
    wall = min(walls)
    n_reduce_tasks = len(last.run.reduce_task_costs("wall"))
    cell = {
        "runtime": runtime_kind,
        "transport": transport,
        "detector": detector,
        "kernel": kernel,
        "workers": config.workers if runtime_kind == "parallel" else 0,
        "repeats": config.repeats,
        "wall_seconds": wall,
        "wall_seconds_all": walls,
        "detect_wall_seconds": min(detect_walls),
        "reduce_task_wall_seconds": min(reduce_walls),
        "throughput_points_per_s": (
            dataset.n / wall if wall > 0 else 0.0
        ),
        "n_outliers": len(last.outlier_ids),
        "outliers_hash": _outliers_hash(last.outlier_ids),
        "distance_evals": counters.get("dod", "distance_evals"),
        "cost_units": last.map_units + last.reduce_units,
        "shuffle_records": last.run.total_shuffle_records(),
    }
    if config.metric != "euclidean":
        cell["metric"] = config.metric
    if tier != "exact":
        cell["tier"] = tier
    if last.certification is not None:
        # Deterministic tier effectiveness: what fraction of points the
        # certification pass left for the exact residue machinery, and
        # the witness bound it certified against.
        cell["tier_residue_fraction"] = (
            last.certification.residue_fraction
        )
        cell["tier_certification_bound"] = last.certification.bound
    graph_certified = counters.get("graph", "certified")
    graph_residue = counters.get("graph", "residue")
    if graph_certified or graph_residue:
        # Deterministic proximity-graph effectiveness: the fraction of
        # core points the K-neighbor graph could NOT certify and that
        # fell through to the exact residue scan.
        cell["residue_fraction"] = graph_residue / (
            graph_certified + graph_residue
        )
    if kernel_walls:
        # Backend-body wall (Kernel.wall_seconds): exactly the work the
        # backends implement differently, so the python/numpy speedup
        # is measured here — end-to-end and even per-task walls dilute
        # it with planning, record assembly, and tracing overhead both
        # backends share.
        cell["kernel_wall_seconds"] = min(kernel_walls)
        cell["kernel_wall_per_task_us"] = (
            min(kernel_walls) / n_reduce_tasks * 1e6
            if n_reduce_tasks else 0.0
        )
    if tstats:
        cell["transport_stats"] = tstats
        tasks = tstats.get("tasks", 0)
        cell["dispatch_per_task_us"] = (
            tstats["dispatch_seconds"] / tasks * 1e6 if tasks else 0.0
        )
    if log is not None:
        tag = "" if tier == "exact" else f" tier={tier}"
        log(
            f"  {runtime_kind:<8} {transport:<7} {detector:<12} "
            f"{kernel:<7} {wall:8.3f}s  outliers={cell['n_outliers']}"
            f"{tag}"
        )
    return cell


def run_bench(config: BenchConfig, log=None) -> Dict[str, Any]:
    """Run the full matrix; return the ``BENCH_<label>.json`` payload."""
    dataset = region_dataset(
        config.region, base_n=config.base_n, seed=config.seed
    )
    if log is not None:
        log(
            f"bench '{config.label}': {config.region} n={dataset.n} "
            f"r={config.r} k={config.k} strategy={config.strategy} "
            f"workers={config.workers} repeats={config.repeats}"
        )
    runs: List[Dict[str, Any]] = []
    default_kernel = config.kernels[-1]
    detectors = config.detectors
    if config.metric != "euclidean":
        skipped = [
            d for d in detectors if d not in METRIC_GENERIC_DETECTORS
        ]
        detectors = tuple(
            d for d in detectors if d in METRIC_GENERIC_DETECTORS
        )
        if skipped and log is not None:
            # Never a silent cap: the matrix shrank, say so.
            log(
                f"  skipping {', '.join(skipped)}: Euclidean-only under "
                f"metric {config.metric!r}"
            )
    for detector in detectors:
        for kernel in config.kernels:
            runs.append(
                _run_cell(
                    config, dataset, detector, "serial", "inline",
                    kernel, log,
                )
            )
        for tier in config.tiers:
            if tier == "exact":
                continue  # the kernel axis already covers exact
            runs.append(
                _run_cell(
                    config, dataset, detector, "serial", "inline",
                    default_kernel, log, tier=tier,
                )
            )
        for transport in config.transports:
            runs.append(
                _run_cell(
                    config, dataset, detector, "parallel", transport,
                    default_kernel, log,
                )
            )
    workload = {
        "region": config.region,
        "n_points": dataset.n,
        "r": config.r,
        "k": config.k,
        "strategy": config.strategy,
        "n_partitions": config.n_partitions,
        "n_reducers": config.n_reducers,
        "workers": config.workers,
        "seed": config.seed,
        "block_records": config.block_records,
        "kernels": list(config.kernels),
    }
    if config.metric != "euclidean":
        workload["metric"] = config.metric
    if tuple(config.tiers) != ("exact",):
        workload["tiers"] = list(config.tiers)
    return {
        "schema_version": SCHEMA_VERSION,
        "label": config.label,
        "workload": workload,
        "runs": runs,
        "derived": _derive(runs, config, detectors),
    }


def _derive(
    runs: List[Dict[str, Any]],
    config: BenchConfig,
    detectors: tuple | None = None,
) -> Dict[str, Any]:
    """Cross-cell summaries: transport agreement + dispatch overhead."""
    derived: Dict[str, Any] = {"per_detector": {}}
    identical = True
    for detector in (detectors if detectors is not None
                     else config.detectors):
        cells = [r for r in runs if r["detector"] == detector]
        hashes = {c["outliers_hash"] for c in cells}
        identical &= len(hashes) == 1
        entry: Dict[str, Any] = {
            "identical_outliers": len(hashes) == 1,
        }
        overhead = {
            c["transport"]: c["dispatch_per_task_us"]
            for c in cells if "dispatch_per_task_us" in c
        }
        if overhead:
            entry["dispatch_per_task_us"] = overhead
        if overhead.get("shm") and overhead.get("pickle"):
            entry["dispatch_overhead_ratio"] = (
                overhead["pickle"] / overhead["shm"]
            )
        # Kernel/dispatch summaries compare exact-tier cells only; the
        # tier axis gets its own summary below.
        serial_cells = [
            c for c in cells
            if c["runtime"] == "serial"
            and c.get("tier", "exact") == "exact"
        ]
        serial = next(
            (
                c for c in serial_cells
                if c["kernel"] == config.kernels[-1]
            ),
            serial_cells[0] if serial_cells else None,
        )
        if serial is not None:
            entry["speedup_vs_serial"] = {
                c["transport"]:
                    serial["wall_seconds"] / c["wall_seconds"]
                    if c["wall_seconds"] > 0 else 0.0
                for c in cells if c["runtime"] == "parallel"
            }
        kernel_walls = {
            c["kernel"]: c["kernel_wall_per_task_us"]
            for c in serial_cells if "kernel_wall_per_task_us" in c
        }
        if kernel_walls:
            entry["kernel_wall_per_task_us"] = kernel_walls
        if kernel_walls.get("python") and kernel_walls.get("numpy"):
            entry["kernel_speedup_ratio"] = (
                kernel_walls["python"] / kernel_walls["numpy"]
            )
        tier_cells = {
            c.get("tier", "exact"): c
            for c in cells
            if c["runtime"] == "serial"
            and c["kernel"] == config.kernels[-1]
        }
        if len(tier_cells) > 1:
            entry["tier_wall_seconds"] = {
                tier: c["wall_seconds"]
                for tier, c in sorted(tier_cells.items())
            }
            fast = tier_cells.get("fast")
            exact_cell = tier_cells.get("exact")
            if fast is not None and exact_cell is not None:
                if fast["wall_seconds"] > 0:
                    entry["tier_speedup"] = (
                        exact_cell["wall_seconds"]
                        / fast["wall_seconds"]
                    )
                if "tier_residue_fraction" in fast:
                    entry["tier_residue_fraction"] = (
                        fast["tier_residue_fraction"]
                    )
        derived["per_detector"][detector] = entry
    derived["identical_outliers"] = identical
    return derived


# ----------------------------------------------------------------------
# Regression gate
# ----------------------------------------------------------------------
def check_against(
    result: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = 0.25,
) -> List[str]:
    """Compare a fresh bench result against a checked-in baseline.

    Returns a list of human-readable problems (empty = gate passes):

    * deterministic fields (outlier hash/count, ``distance_evals``, cost
      units, shuffle volume) must match **exactly** per matrix cell;
    * the per-detector ``dispatch_overhead_ratio`` (pickle per-task
      dispatch cost / shm) must not regress below
      ``baseline * (1 - tolerance)`` — one-sided, because a faster shm
      path is an improvement, not a deviation;
    * the per-detector ``kernel_speedup_ratio`` (serial python / numpy
      backend-body wall per task) gets the same one-sided baseline check
      *and*, whenever the baseline itself records at least
      :data:`KERNEL_SPEEDUP_FLOOR`, an absolute floor at that value —
      once a workload has demonstrated the vectorized backend earning
      3x over the scalar oracle, dropping below it means the kernel
      layer lost its reason to exist (toy workloads whose baseline never
      reached the floor only get the relative check);
    * every detector must keep ``identical_outliers`` true.

    Absolute wall times and throughput are machine-local and never
    compared.
    """
    problems: List[str] = []
    if result.get("workload") != baseline.get("workload"):
        problems.append(
            "workload mismatch: baseline "
            f"{baseline.get('workload')} != run {result.get('workload')}"
        )
        return problems  # nothing else is comparable

    def key(cell):
        return (
            cell["runtime"], cell["transport"], cell["detector"],
            cell.get("kernel", ""), cell.get("tier", "exact"),
        )

    base_cells = {key(c): c for c in baseline.get("runs", [])}
    run_cells = {key(c): c for c in result.get("runs", [])}
    if set(base_cells) != set(run_cells):
        problems.append(
            f"matrix mismatch: baseline cells {sorted(base_cells)} != "
            f"run cells {sorted(run_cells)}"
        )
        return problems

    exact_fields = (
        "n_outliers", "outliers_hash", "distance_evals", "cost_units",
        "shuffle_records", "residue_fraction",
        "tier_residue_fraction", "tier_certification_bound",
    )
    for cell_key, base in base_cells.items():
        fresh = run_cells[cell_key]
        for fld in exact_fields:
            if base.get(fld) != fresh.get(fld):
                problems.append(
                    f"{'/'.join(cell_key)}: {fld} baseline "
                    f"{base.get(fld)} != run {fresh.get(fld)}"
                )

    base_per = baseline.get("derived", {}).get("per_detector", {})
    run_per = result.get("derived", {}).get("per_detector", {})
    for detector, base_entry in base_per.items():
        run_entry = run_per.get(detector, {})
        if not run_entry.get("identical_outliers", False):
            problems.append(
                f"{detector}: outlier sets differ across transports"
            )
        for ratio_field in (
            "dispatch_overhead_ratio", "kernel_speedup_ratio"
        ):
            base_ratio = base_entry.get(ratio_field)
            run_ratio = run_entry.get(ratio_field)
            if base_ratio is None:
                continue
            floor = base_ratio * (1.0 - tolerance)
            if run_ratio is None or run_ratio < floor:
                problems.append(
                    f"{detector}: {ratio_field} regressed to "
                    f"{run_ratio} (< {floor:.2f} = baseline "
                    f"{base_ratio:.2f} - {tolerance:.0%})"
                )
        base_kernel_ratio = base_entry.get("kernel_speedup_ratio")
        run_kernel_ratio = run_entry.get("kernel_speedup_ratio")
        if (
            base_kernel_ratio is not None
            and base_kernel_ratio >= KERNEL_SPEEDUP_FLOOR
            and (
                run_kernel_ratio is None
                or run_kernel_ratio < KERNEL_SPEEDUP_FLOOR
            )
        ):
            problems.append(
                f"{detector}: kernel_speedup_ratio {run_kernel_ratio} "
                f"below the absolute floor {KERNEL_SPEEDUP_FLOOR:.1f}x "
                "(numpy backend must stay well ahead of the scalar "
                "oracle)"
            )
    return problems


# ----------------------------------------------------------------------
# I/O
# ----------------------------------------------------------------------
def save_bench(result: Dict[str, Any], path: str) -> None:
    with open(path, "w") as f:
        json.dump(result, f, indent=2, sort_keys=True)
        f.write("\n")


def load_bench(path: str) -> Dict[str, Any]:
    with open(path) as f:
        return json.load(f)
