"""Dataset generators (paper stand-ins) and I/O / preparation helpers."""

from .io import (
    finite_row_mask,
    load_csv,
    normalize_minmax,
    save_csv,
    standardize,
    subsample,
)
from .generators import (
    REGION_SCALES,
    STATE_DENSITIES,
    clustered_mixture,
    dense_sparse_pair,
    density_dataset,
    density_sweep,
    distort_replicate,
    gaussian_clusters,
    region_dataset,
    state_dataset,
    tiger_like,
    uniform,
)

__all__ = [
    "finite_row_mask",
    "load_csv",
    "save_csv",
    "normalize_minmax",
    "standardize",
    "subsample",
    "uniform",
    "gaussian_clusters",
    "clustered_mixture",
    "dense_sparse_pair",
    "density_dataset",
    "density_sweep",
    "state_dataset",
    "region_dataset",
    "tiger_like",
    "distort_replicate",
    "STATE_DENSITIES",
    "REGION_SCALES",
]
