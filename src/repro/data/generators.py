"""Synthetic dataset generators standing in for the paper's data.

The paper evaluates on TIGER (spatial census features), four OpenStreetMap
state extracts of equal cardinality but very different density (OH sparse,
MA medium, CA/NY very dense), a nested region hierarchy (MA ⊂ NE ⊂ US ⊂
Planet) of growing size and skew, and a 2 TB distortion of OSM.  None of
those can ship with a test suite, so this module generates point clouds
with the *same controlled properties* — cardinality, average density,
skew, and nesting — which are the only characteristics the experiments
manipulate.  See DESIGN.md's substitution table.

All generators are deterministic given ``seed``.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..core.dataset import Dataset
from ..geometry import Rect

__all__ = [
    "uniform",
    "gaussian_clusters",
    "clustered_mixture",
    "dense_sparse_pair",
    "density_dataset",
    "density_sweep",
    "state_dataset",
    "region_dataset",
    "tiger_like",
    "distort_replicate",
    "STATE_DENSITIES",
    "REGION_SCALES",
]


def uniform(
    n: int, domain: Rect, seed: int = 0, name: str = "uniform"
) -> Dataset:
    """``n`` points uniform over ``domain``."""
    rng = np.random.default_rng(seed)
    low = np.asarray(domain.low)
    high = np.asarray(domain.high)
    points = rng.uniform(low, high, size=(n, domain.ndim))
    return Dataset.from_points(points, name)


def gaussian_clusters(
    n: int,
    centers: np.ndarray,
    spreads: Sequence[float],
    weights: Sequence[float] | None = None,
    clip: Rect | None = None,
    seed: int = 0,
    name: str = "clusters",
) -> Dataset:
    """A Gaussian mixture with per-cluster isotropic spread.

    Points falling outside ``clip`` (when given) are reflected back inside,
    preserving cardinality without distorting local density much.
    """
    rng = np.random.default_rng(seed)
    centers = np.asarray(centers, dtype=float)
    n_clusters = centers.shape[0]
    if weights is None:
        weights = [1.0 / n_clusters] * n_clusters
    weights = np.asarray(weights, dtype=float)
    weights = weights / weights.sum()
    assignments = rng.choice(n_clusters, size=n, p=weights)
    points = np.empty((n, centers.shape[1]))
    for c in range(n_clusters):
        mask = assignments == c
        count = int(mask.sum())
        points[mask] = rng.normal(
            centers[c], spreads[c], size=(count, centers.shape[1])
        )
    if clip is not None:
        points = _reflect_into(points, clip)
    return Dataset.from_points(points, name)


def clustered_mixture(
    n: int,
    domain: Rect,
    n_clusters: int,
    cluster_fraction: float = 0.8,
    spread_fraction: float = 0.05,
    seed: int = 0,
    name: str = "mixture",
) -> Dataset:
    """The workhorse skewed generator: uniform background + clusters.

    ``cluster_fraction`` of the points concentrate in ``n_clusters``
    Gaussian blobs whose spread is ``spread_fraction`` of the domain width;
    the rest are uniform background — the "rare outliers" population.
    """
    rng = np.random.default_rng(seed)
    n_clustered = int(n * cluster_fraction)
    n_background = n - n_clustered
    low = np.asarray(domain.low)
    high = np.asarray(domain.high)
    centers = rng.uniform(low, high, size=(n_clusters, domain.ndim))
    width = float(np.min(high - low))
    spreads = rng.uniform(
        0.5 * spread_fraction, 1.5 * spread_fraction, size=n_clusters
    ) * width
    clustered = gaussian_clusters(
        n_clustered, centers, spreads, clip=domain,
        seed=rng.integers(2**31), name=name,
    )
    background = uniform(
        n_background, domain, seed=int(rng.integers(2**31)), name=name
    )
    points = np.vstack([clustered.points, background.points])
    return Dataset.from_points(points, name)


# ----------------------------------------------------------------------
# Fig. 4: the dense/sparse pair
# ----------------------------------------------------------------------
def dense_sparse_pair(
    n: int = 10_000, density_ratio: float = 4.0, base_side: float = 100.0,
    seed: int = 0,
) -> tuple[Dataset, Dataset]:
    """Two equal-cardinality uniform datasets; the dense one covers a
    domain ``density_ratio`` times smaller (the paper's D-Dense covers 1/4
    the area of D-Sparse)."""
    sparse_side = base_side * math.sqrt(density_ratio)
    dense = uniform(
        n, Rect((0.0, 0.0), (base_side, base_side)), seed, "D-Dense"
    )
    sparse = uniform(
        n, Rect((0.0, 0.0), (sparse_side, sparse_side)), seed + 1,
        "D-Sparse",
    )
    return dense, sparse


# ----------------------------------------------------------------------
# Fig. 5: the density sweep
# ----------------------------------------------------------------------
def density_dataset(
    n: int, density: float, ndim: int = 2, seed: int = 0,
    name: str | None = None,
) -> Dataset:
    """A uniform dataset with exactly the requested cardinality/area
    density (the Sec. IV density measure), achieved by sizing the domain."""
    if density <= 0:
        raise ValueError("density must be positive")
    side = (n / density) ** (1.0 / ndim)
    domain = Rect((0.0,) * ndim, (side,) * ndim)
    return uniform(n, domain, seed, name or f"density-{density:g}")


def density_sweep(
    densities: Sequence[float], n: int = 10_000, seed: int = 0
) -> list[Dataset]:
    """One dataset per requested density, all with ``n`` points."""
    return [
        density_dataset(n, rho, seed=seed + i)
        for i, rho in enumerate(densities)
    ]


# ----------------------------------------------------------------------
# Fig. 7 / 9a: the four state datasets
# ----------------------------------------------------------------------
#: Average density (points per unit area) for each state stand-in.  The
#: ordering matches the paper: NY and CA very dense, MA in the middle,
#: OH relatively sparse.  The spread is wide enough that, at the
#: experiments' (r, k), OH sits in Lemma 4.2's unresolved band while CA
#: and NY sit deep in the dense-pruned band.
STATE_DENSITIES = {"OH": 0.8, "MA": 3.0, "CA": 20.0, "NY": 30.0}

#: Composition of each state as (dense blobs, broad mid-density blobs,
#: uniform background) point fractions.  Real map data mixes urban cores,
#: suburbs, and empty land in state-specific proportions — this is what
#: lets the multi-tactic optimizer assign different algorithms within one
#: state, exactly as the paper observes ("there are still many relatively
#: sparse partitions" even in dense datasets, Sec. VI-D).
_STATE_PROFILES = {
    "OH": (0.25, 0.55, 0.20),
    "MA": (0.40, 0.40, 0.20),
    "CA": (0.60, 0.25, 0.15),
    "NY": (0.65, 0.20, 0.15),
}

#: Cluster counts: denser states are more urbanized (more, tighter blobs).
_STATE_CLUSTERS = {"OH": 6, "MA": 10, "CA": 16, "NY": 20}

#: Peak local density of the mid-density ("suburban") tier — chosen to sit
#: inside Lemma 4.2's unresolved band for the experiments' (r, k), the
#: regime where Nested-Loop beats Cell-Based.
MID_LOCAL_DENSITY = 1.8


def state_dataset(state: str, n: int = 30_000, seed: int = 0) -> Dataset:
    """An equal-cardinality state extract with the state's density profile.

    The four states share ``n`` (the paper's extracts are ~30M points
    each); only the covered domain area and the composition of dense
    cores / mid-density sprawl / sparse background differ.
    """
    try:
        density = STATE_DENSITIES[state]
    except KeyError:
        raise ValueError(
            f"unknown state {state!r}; known: {sorted(STATE_DENSITIES)}"
        ) from None
    side = math.sqrt(n / density)
    domain = Rect((0.0, 0.0), (side, side))
    rng = np.random.default_rng(seed + sum(ord(c) for c in state))
    frac_dense, frac_mid, frac_bg = _STATE_PROFILES[state]
    n_dense = int(n * frac_dense)
    n_mid = int(n * frac_mid)
    n_bg = n - n_dense - n_mid
    n_blobs = _STATE_CLUSTERS[state]

    # Urban cores: tight blobs, locally one to two orders of magnitude
    # denser than the state average.
    dense_centers = rng.uniform(0, side, size=(n_blobs, 2))
    dense_spreads = rng.uniform(0.015, 0.035, size=n_blobs) * side
    dense = gaussian_clusters(
        n_dense, dense_centers, dense_spreads, clip=domain,
        seed=int(rng.integers(2**31)), name=state,
    )
    # Suburban sprawl: broad blobs sized so their *local* density lands
    # around MID_LOCAL_DENSITY regardless of the state average — the
    # mid-density regions real maps have between cities and countryside.
    mid_count = max(3, n_blobs // 2)
    per_blob = max(1, n_mid // mid_count)
    sigma_mid = math.sqrt(per_blob / (2.0 * math.pi * MID_LOCAL_DENSITY))
    mid_centers = rng.uniform(0, side, size=(mid_count, 2))
    mid_spreads = rng.uniform(0.85, 1.15, size=mid_count) * sigma_mid
    mid = gaussian_clusters(
        n_mid, mid_centers, mid_spreads, clip=domain,
        seed=int(rng.integers(2**31)), name=state,
    )
    background = uniform(
        n_bg, domain, seed=int(rng.integers(2**31)), name=state
    )
    points = np.vstack([dense.points, mid.points, background.points])
    return Dataset.from_points(points, state)


# ----------------------------------------------------------------------
# Fig. 8 / 9b: the nested region hierarchy
# ----------------------------------------------------------------------
#: Relative cardinality of each region (MA is the base unit; the paper
#: grows 30M -> 4B, a 128x span; we keep the doubling structure).
REGION_SCALES = {"MA": 1, "NE": 2, "US": 4, "Planet": 8}

#: Tile order for the hierarchy: bigger regions append more state-like
#: tiles, so they mix more distinct density profiles — "larger datasets
#: tend to be more skewed ... not only many sparse partitions, but also
#: many dense partitions" (Sec. VI-C).
_REGION_TILE_ORDER = ("MA", "OH", "NY", "CA", "OH", "NY", "MA", "CA")


def region_dataset(region: str, base_n: int = 10_000, seed: int = 0) -> Dataset:
    """A region of the MA ⊂ NE ⊂ US ⊂ Planet hierarchy.

    Construction: a row of state-like tiles laid side by side — the MA
    region is one tile, NE two, US four, Planet eight — so every region is
    structurally a prefix of the larger ones, cardinality doubles per
    level, and the density diversity grows with region size.
    """
    try:
        scale = REGION_SCALES[region]
    except KeyError:
        raise ValueError(
            f"unknown region {region!r}; known: {sorted(REGION_SCALES)}"
        ) from None
    pieces = []
    x_offset = 0.0
    max_height = 0.0
    for i in range(scale):
        state = _REGION_TILE_ORDER[i]
        tile = state_dataset(state, n=base_n, seed=seed + 101 * i)
        shifted = tile.points + np.array([x_offset, 0.0])
        pieces.append(shifted)
        bounds = tile.bounds
        x_offset += bounds.widths[0] * 1.02  # thin gap between tiles
        max_height = max(max_height, bounds.widths[1])
    points = np.vstack(pieces)
    return Dataset.from_points(points, region)


# ----------------------------------------------------------------------
# Fig. 10b: TIGER-like road network data
# ----------------------------------------------------------------------
def tiger_like(
    n: int = 30_000, n_roads: int = 40, side: float = 200.0, seed: int = 0
) -> Dataset:
    """Road-network-style points: dense strings along random segments plus
    sparse background noise — the heavy linear skew of TIGER extracts."""
    rng = np.random.default_rng(seed)
    n_road_points = int(n * 0.85)
    n_noise = n - n_road_points
    starts = rng.uniform(0, side, size=(n_roads, 2))
    angles = rng.uniform(0, 2 * math.pi, size=n_roads)
    lengths = rng.uniform(0.2 * side, 0.8 * side, size=n_roads)
    ends = starts + np.stack(
        [lengths * np.cos(angles), lengths * np.sin(angles)], axis=1
    )
    road_of = rng.integers(0, n_roads, size=n_road_points)
    t = rng.uniform(0, 1, size=n_road_points)[:, None]
    points = starts[road_of] * (1 - t) + ends[road_of] * t
    points += rng.normal(0, side / 400.0, size=points.shape)
    noise = rng.uniform(0, side, size=(n_noise, 2))
    all_points = np.clip(np.vstack([points, noise]), 0.0, side)
    return Dataset.from_points(all_points, "TIGER-like")


# ----------------------------------------------------------------------
# Fig. 10a: the 2TB-style distortion tool
# ----------------------------------------------------------------------
def distort_replicate(
    dataset: Dataset,
    copies: int = 3,
    magnitude: float = 0.01,
    seed: int = 0,
) -> Dataset:
    """The paper's synthetic-scaling tool (Sec. VI-A): replicate each point
    ``copies`` times with a random per-dimension alteration.

    ``magnitude`` is the alteration scale as a fraction of the domain
    width.  The original points are kept, so the result has
    ``(copies + 1) * n`` points.
    """
    rng = np.random.default_rng(seed)
    widths = np.asarray(dataset.bounds.widths)
    blocks = [dataset.points]
    for _ in range(copies):
        jitter = rng.uniform(-1, 1, size=dataset.points.shape) * (
            widths * magnitude
        )
        blocks.append(dataset.points + jitter)
    return Dataset.from_points(
        np.vstack(blocks), f"{dataset.name}-x{copies + 1}"
    )


# ----------------------------------------------------------------------
def _reflect_into(points: np.ndarray, domain: Rect) -> np.ndarray:
    """Reflect stray points back into the domain (repeatedly if needed)."""
    low = np.asarray(domain.low)
    high = np.asarray(domain.high)
    span = high - low
    out = points.copy()
    for _ in range(8):
        below = out < low
        out = np.where(below, 2 * low - out, out)
        above = out > high
        out = np.where(above, 2 * high - out, out)
        if not (below.any() or above.any()):
            break
    # Pathological strays (many spans away) just clamp.
    return np.clip(out, low, high)
