"""Dataset I/O and preparation utilities.

Real deployments read points from files and often need light preparation
before distance thresholds are meaningful (per-dimension scales differ).
These helpers cover the common cases without pulling in a dataframe
dependency.
"""

from __future__ import annotations

import numpy as np

from ..core.dataset import Dataset

__all__ = [
    "finite_row_mask",
    "load_csv",
    "save_csv",
    "normalize_minmax",
    "standardize",
    "subsample",
]


def finite_row_mask(coords: np.ndarray) -> np.ndarray:
    """Boolean mask of rows whose coordinates are all finite.

    A NaN or infinite coordinate poisons grid routing silently: NaN
    compares false with everything, so such a point falls out of every
    partition's rectangle and simply vanishes from the answer.  Loaders
    therefore reject or quarantine these rows up front instead of
    letting them corrupt detection.
    """
    return np.isfinite(np.asarray(coords, dtype=float)).all(axis=1)


def load_csv(
    path: str,
    with_ids: bool = False,
    delimiter: str = ",",
    name: str | None = None,
    invalid: str = "error",
) -> Dataset:
    """Load a point-per-line CSV.

    With ``with_ids`` the first column is taken as the integer point id;
    otherwise ids are assigned ``0..n-1``.  Rows with NaN/inf
    coordinates are rejected (``invalid="error"``, the default) or
    silently dropped (``invalid="drop"``).
    """
    if invalid not in ("error", "drop"):
        raise ValueError("invalid must be 'error' or 'drop'")
    raw = np.loadtxt(path, delimiter=delimiter, ndmin=2)
    if raw.shape[1] < (2 if with_ids else 1):
        raise ValueError(f"{path}: not enough columns")
    mask = finite_row_mask(raw[:, 1:] if with_ids else raw)
    if not mask.all():
        if invalid == "error":
            raise ValueError(
                f"{path}: {int((~mask).sum())} rows have NaN/inf "
                "coordinates (load with invalid='drop' to discard them)"
            )
        raw = raw[mask]
    if raw.shape[0] == 0:
        raise ValueError(f"{path}: no usable rows")
    if with_ids:
        return Dataset(
            raw[:, 1:], raw[:, 0].astype(np.int64), name or path
        )
    return Dataset.from_points(raw, name or path)


def save_csv(
    dataset: Dataset,
    path: str,
    with_ids: bool = False,
    delimiter: str = ",",
) -> None:
    """Write a dataset in the format :func:`load_csv` reads."""
    if with_ids:
        table = np.hstack(
            [dataset.ids[:, None].astype(float), dataset.points]
        )
    else:
        table = dataset.points
    np.savetxt(path, table, delimiter=delimiter, fmt="%.10g")


def normalize_minmax(dataset: Dataset) -> Dataset:
    """Rescale every dimension into [0, 1] (degenerate dims map to 0).

    Distance thresholds then speak the same units in every dimension —
    the usual preparation before a single ``r`` is chosen.
    """
    low = dataset.points.min(axis=0)
    span = dataset.points.max(axis=0) - low
    safe = np.where(span > 0, span, 1.0)
    return Dataset(
        (dataset.points - low) / safe, dataset.ids,
        f"{dataset.name}-minmax",
    )


def standardize(dataset: Dataset) -> Dataset:
    """Zero-mean, unit-variance per dimension (degenerate dims stay 0)."""
    mean = dataset.points.mean(axis=0)
    std = dataset.points.std(axis=0)
    safe = np.where(std > 0, std, 1.0)
    return Dataset(
        (dataset.points - mean) / safe, dataset.ids,
        f"{dataset.name}-std",
    )


def subsample(dataset: Dataset, n: int, seed: int = 0) -> Dataset:
    """A uniform random subset of ``n`` points (ids preserved)."""
    if n >= dataset.n:
        return dataset
    rng = np.random.default_rng(seed)
    rows = rng.choice(dataset.n, size=n, replace=False)
    rows.sort()
    return dataset.subset(rows, f"{dataset.name}-sub{n}")
