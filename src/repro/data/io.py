"""Dataset I/O and preparation utilities.

Real deployments read points from files and often need light preparation
before distance thresholds are meaningful (per-dimension scales differ).
These helpers cover the common cases without pulling in a dataframe
dependency.
"""

from __future__ import annotations

import numpy as np

from ..core.dataset import Dataset

__all__ = [
    "load_csv",
    "save_csv",
    "normalize_minmax",
    "standardize",
    "subsample",
]


def load_csv(
    path: str,
    with_ids: bool = False,
    delimiter: str = ",",
    name: str | None = None,
) -> Dataset:
    """Load a point-per-line CSV.

    With ``with_ids`` the first column is taken as the integer point id;
    otherwise ids are assigned ``0..n-1``.
    """
    raw = np.loadtxt(path, delimiter=delimiter, ndmin=2)
    if raw.shape[1] < (2 if with_ids else 1):
        raise ValueError(f"{path}: not enough columns")
    if with_ids:
        return Dataset(
            raw[:, 1:], raw[:, 0].astype(np.int64), name or path
        )
    return Dataset.from_points(raw, name or path)


def save_csv(
    dataset: Dataset,
    path: str,
    with_ids: bool = False,
    delimiter: str = ",",
) -> None:
    """Write a dataset in the format :func:`load_csv` reads."""
    if with_ids:
        table = np.hstack(
            [dataset.ids[:, None].astype(float), dataset.points]
        )
    else:
        table = dataset.points
    np.savetxt(path, table, delimiter=delimiter, fmt="%.10g")


def normalize_minmax(dataset: Dataset) -> Dataset:
    """Rescale every dimension into [0, 1] (degenerate dims map to 0).

    Distance thresholds then speak the same units in every dimension —
    the usual preparation before a single ``r`` is chosen.
    """
    low = dataset.points.min(axis=0)
    span = dataset.points.max(axis=0) - low
    safe = np.where(span > 0, span, 1.0)
    return Dataset(
        (dataset.points - low) / safe, dataset.ids,
        f"{dataset.name}-minmax",
    )


def standardize(dataset: Dataset) -> Dataset:
    """Zero-mean, unit-variance per dimension (degenerate dims stay 0)."""
    mean = dataset.points.mean(axis=0)
    std = dataset.points.std(axis=0)
    safe = np.where(std > 0, std, 1.0)
    return Dataset(
        (dataset.points - mean) / safe, dataset.ids,
        f"{dataset.name}-std",
    )


def subsample(dataset: Dataset, n: int, seed: int = 0) -> Dataset:
    """A uniform random subset of ``n`` points (ids preserved)."""
    if n >= dataset.n:
        return dataset
    rng = np.random.default_rng(seed)
    rows = rng.choice(dataset.n, size=n, replace=False)
    rows.sort()
    return dataset.subset(rows, f"{dataset.name}-sub{n}")
