"""Tiered fast→exact detection via sensitivity sampling (ROADMAP item 3).

The exact DOD machinery pays partition-local detector costs for every
point.  The *fast tier* prepends one linear pass built on the mini-bucket
sensitivity construction (Lucic et al., arXiv 1605.00519; composed for
distributed state after Ceccarello et al., arXiv 1802.09205):

1. **sample** — draw a deterministic sensitivity sample: per-mini-bucket
   quotas proportional to the estimated bucket mass, selection within a
   bucket by splitmix64 hash rank of the point id (layout-independent,
   seedable — the same hash the Bernoulli sampler uses);
2. **certify** — every point counts its witnesses among the sample with
   the configured kernel/metric and an early exit at ``k + 1``.  A point
   with ``>= k`` sample neighbors within ``r`` (self excluded) provably
   has ``>= k`` true neighbors — the sample is a subset of the data — so
   it is certified an inlier with the explicit bound ``count >= k``;
3. **residue** — everything uncertified flows to the exact machinery
   unchanged.  Certified points stay in every partition pool as
   supporting records, so Lemma 3.1 exactness is untouched: the fast
   tier can only *pre-clear* inliers, never change a verdict.

Certification is one-sided and sound for every metric (witnesses are
verified with the actual metric), so the tier composes with the
``MetricSafe`` degrade path unchanged.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, List, Optional, Set, Tuple

import numpy as np

from ..geometry import Rect
from ..kernels import resolve_kernel
from ..mapreduce import (
    JobResult,
    LocalRuntime,
    MapReduceJob,
    Mapper,
    Reducer,
    TaskContext,
)
from ..metrics import resolve_metric
from ..costmodel import ball_volume, default_sample_size, select_tier
from ..params import OutlierParams
from ..sampling import collect_minibucket_stats, splitmix64
from ..sampling.minibuckets import MiniBucketStats

__all__ = [
    "TIER_CHOICES",
    "TIER_ENV",
    "DEFAULT_TIER",
    "SensitivitySample",
    "TierCertification",
    "resolve_tier",
    "build_sensitivity_sample",
    "certified_mask",
    "run_certification",
    "support_halo",
    "prepare_fast_tier",
    "estimated_mean_neighbors",
    "pick_tier",
]

#: What a ``--tier`` flag accepts.
TIER_CHOICES = ("exact", "fast", "auto")

#: Environment override consulted when no tier is requested anywhere.
TIER_ENV = "REPRO_TIER"

#: Tier used when nothing is requested: the exact machinery, unchanged.
DEFAULT_TIER = "exact"


def resolve_tier(spec: Optional[str]) -> str:
    """Normalize a tier request to ``"exact"``, ``"fast"`` or ``"auto"``.

    ``None`` consults the ``REPRO_TIER`` environment variable and falls
    back to :data:`DEFAULT_TIER`.  ``"auto"`` stays symbolic — the caller
    resolves it against the cost model
    (:func:`repro.costmodel.select_tier`) once dataset statistics are in
    hand, and persists the *resolved* tier in run identity.
    """
    if spec is None:
        spec = os.environ.get(TIER_ENV) or DEFAULT_TIER
    tier = str(spec).lower()
    if tier not in TIER_CHOICES:
        raise ValueError(
            f"unknown tier {spec!r}; choose from {TIER_CHOICES}"
        )
    return tier


@dataclass(frozen=True)
class SensitivitySample:
    """A deterministic sensitivity sample: ids + points, hash-selected.

    ``grid`` (the mini-bucket grid the sample was drawn on) enables the
    certification scan to prune candidates by cell distance; without it
    every query scans the whole sample.  Pruning never changes the
    certified set — only cells strictly farther than ``r`` are dropped —
    so a grid-less sample (e.g. restored from an old snapshot) is merely
    slower, never different.
    """

    ids: np.ndarray  # (m,) int64 point ids
    points: np.ndarray  # (m, d) float
    grid: Optional[object] = None  # UniformGrid, when available

    @property
    def size(self) -> int:
        return int(self.ids.shape[0])

    def id_set(self) -> Set[int]:
        return {int(i) for i in self.ids}


@dataclass(frozen=True)
class TierCertification:
    """What the fast pass established, in deterministic terms."""

    n_points: int
    certified: int
    sample_size: int
    bound: int  # every certified point has >= bound true neighbors
    distance_evals: int
    #: Certified points strictly farther than ``r`` from every residue
    #: point: they can never witness a remaining query, so the detection
    #: shuffle skips them entirely.
    dropped: int = 0

    @property
    def residue(self) -> int:
        return self.n_points - self.certified

    @property
    def residue_fraction(self) -> float:
        if self.n_points <= 0:
            return 0.0
        return self.residue / self.n_points


def build_sensitivity_sample(
    points: np.ndarray,
    ids: np.ndarray,
    stats: MiniBucketStats,
    params: OutlierParams,
    seed: int = 1,
    target_size: Optional[int] = None,
) -> SensitivitySample:
    """Draw the sensitivity sample from mini-bucket statistics.

    Quotas are proportional to each bucket's *estimated* mass (its
    sensitivity weight); when the estimate is degenerate (tiny datasets
    where the Bernoulli sample missed everything) the actual populations
    stand in.  Within a bucket, points are ranked by
    ``splitmix64(id, seed)`` and the quota head is taken — deterministic
    and independent of block layout, exactly like the Bernoulli sampler.
    Quotas use raw counts, never :meth:`MiniBucketStats.bucket_density`,
    so the zero-area ``inf`` convention cannot leak into the selection.
    """
    points = np.asarray(points, dtype=float)
    ids = np.asarray(ids, dtype=np.int64)
    n = points.shape[0]
    if n == 0:
        return SensitivitySample(
            ids=np.empty(0, dtype=np.int64),
            points=np.empty((0, points.shape[1] if points.ndim == 2 else 0)),
        )
    if target_size is None:
        target_size = int(round(default_sample_size(n, params)))
    target_size = int(min(max(target_size, 1), n))

    flats = stats.grid.flat_indices(stats.grid.cells_of(points))
    weights = np.maximum(np.asarray(stats.counts, dtype=float), 0.0)
    populations = np.bincount(flats, minlength=stats.grid.n_cells)
    occupied_weight = float(weights[populations > 0].sum())
    if occupied_weight <= 0:
        weights = populations.astype(float)
        occupied_weight = float(weights.sum())
    quotas = np.ceil(
        target_size * weights / occupied_weight
    ).astype(np.int64)
    quotas = np.minimum(quotas, populations)

    hashes = splitmix64(ids.astype(np.uint64), seed)
    order = np.lexsort((hashes, flats))
    sorted_flats = flats[order]
    # Rank of each point within its bucket, in hash order.
    boundaries = np.flatnonzero(np.diff(sorted_flats)) + 1
    starts = np.concatenate(([0], boundaries))
    lengths = np.diff(np.concatenate((starts, [n])))
    ranks = np.arange(n) - np.repeat(starts, lengths)
    keep = ranks < quotas[sorted_flats]
    rows = np.sort(order[keep])
    return SensitivitySample(
        ids=ids[rows], points=points[rows], grid=stats.grid
    )


def certified_mask(
    points: np.ndarray,
    ids: np.ndarray,
    sample: SensitivitySample,
    params: OutlierParams,
    kernel=None,
    metric=None,
) -> Tuple[np.ndarray, int]:
    """Which of ``points`` the sample certifies as inliers.

    Returns ``(mask, distance_evals)``.  A point certifies when it has at
    least ``k`` sample witnesses within ``r``, *excluding itself* when it
    is part of the sample — asking the kernel for ``need = k + 1``
    witnesses covers both cases under the early-exit contract.
    """
    points = np.asarray(points, dtype=float)
    ids = np.asarray(ids, dtype=np.int64)
    n = points.shape[0]
    if n == 0 or sample.size == 0:
        return np.zeros(n, dtype=bool), 0
    backend = resolve_kernel(kernel)
    metric_obj = resolve_metric(metric)
    if sample.grid is not None and metric_obj.is_euclidean:
        counts, evals = _pruned_counts(
            backend, points, sample, params.r, params.k + 1, metric_obj
        )
    else:
        # Non-Euclidean balls have no cell-distance bound on this grid,
        # so metric runs (and grid-less samples) scan the whole sample.
        counts, evals = backend.count_neighbors(
            points, sample.points, params.r, need=params.k + 1,
            metric=metric_obj,
        )
    in_sample = np.isin(ids, sample.ids)
    witnesses = np.asarray(counts, dtype=np.int64) - in_sample.astype(
        np.int64
    )
    return witnesses >= params.k, int(evals)


def _pruned_counts(
    backend, points, sample, r, need, metric_obj
) -> Tuple[np.ndarray, int]:
    """Witness counts with cell-distance candidate pruning.

    A sample point can witness a query only if their mini-bucket cells
    differ by at most ``reach = floor(r / cell_width) + 1`` along every
    axis — any farther pair is separated by strictly more than ``r``
    (minimum gap ``(reach + 1) * width > r``).  Queries are therefore
    grouped by *supercells* of ``reach + 1`` cells a side, and each
    group scans the sample points in its 3^d supercell window — a
    superset of every member's exact ``±reach`` window, so the pruned
    counts (capped at ``need`` by the kernel contract) are identical to
    a full-sample scan.  The coarse grouping trades a ~2x wider
    candidate window for ~reach^d fewer kernel calls, which is the
    right trade when per-call overhead dwarfs the per-pair distance.
    """
    grid = sample.grid
    widths = np.asarray(grid.cell_widths, dtype=float)
    shape = np.asarray(grid.shape, dtype=np.int64)
    # Degenerate (zero-width) axes keep the full span along that axis.
    reach = np.where(
        widths > 0,
        np.floor(r / np.where(widths > 0, widths, 1.0)).astype(np.int64)
        + 1,
        shape,
    )
    if np.all(reach >= shape):
        # The ball covers the whole grid: pruning cannot help.
        return backend.count_neighbors(
            points, sample.points, r, need=need, metric=metric_obj
        )
    block = reach + 1
    sample_coarse = grid.cells_of(sample.points) // block
    query_coarse = grid.cells_of(points) // block
    coarse_shape = (shape + block - 1) // block
    query_flat = np.ravel_multi_index(
        tuple(query_coarse.T), tuple(int(s) for s in coarse_shape)
    )
    counts = np.zeros(points.shape[0], dtype=np.int64)
    evals = 0
    order = np.argsort(query_flat, kind="stable")
    sorted_flat = query_flat[order]
    boundaries = np.flatnonzero(np.diff(sorted_flat)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [points.shape[0]]))
    for s, e in zip(starts, ends):
        rows = order[s:e]
        cell = query_coarse[rows[0]]
        candidates = np.all(
            np.abs(sample_coarse - cell) <= 1, axis=1
        )
        if not candidates.any():
            continue
        group_counts, group_evals = backend.count_neighbors(
            points[rows], sample.points[candidates], r, need=need,
            metric=metric_obj,
        )
        counts[rows] = group_counts
        evals += int(group_evals)
    return counts, evals


def support_halo(
    points: np.ndarray,
    ids: np.ndarray,
    certified: np.ndarray,
    params: OutlierParams,
    grid=None,
    kernel=None,
    metric=None,
) -> Tuple[Set[int], int]:
    """Certified ids the residue detection can drop from the shuffle.

    Every detector pool only has to answer queries for *residue* points,
    and a witness for a residue query lies within ``r`` of it.  A
    certified point strictly farther than ``r`` from every residue point
    therefore appears in no pool that matters: the mapper can skip its
    core and support emissions outright, which shrinks shuffle volume —
    the dominant cost once certification has made the detector cheap —
    without touching any verdict.  Distances use the actual configured
    metric, so the drop is sound wherever certification is.

    Returns ``(droppable_ids, distance_evals)``.
    """
    points = np.asarray(points, dtype=float)
    ids = np.asarray(ids, dtype=np.int64)
    certified = np.asarray(certified, dtype=bool)
    cert_rows = np.flatnonzero(certified)
    res_rows = np.flatnonzero(~certified)
    if cert_rows.size == 0:
        return set(), 0
    if res_rows.size == 0:
        # No queries remain anywhere: every certified point is droppable.
        return {int(i) for i in ids[cert_rows]}, 0
    backend = resolve_kernel(kernel)
    metric_obj = resolve_metric(metric)
    residue = SensitivitySample(
        ids=ids[res_rows], points=points[res_rows],
        grid=grid if metric_obj.is_euclidean else None,
    )
    if residue.grid is not None:
        counts, evals = _pruned_counts(
            backend, points[cert_rows], residue, params.r, 1, metric_obj
        )
    else:
        counts, evals = backend.count_neighbors(
            points[cert_rows], residue.points, params.r, need=1,
            metric=metric_obj,
        )
    far = np.asarray(counts) == 0
    return {int(i) for i in ids[cert_rows[far]]}, int(evals)


class _CertifyMapper(Mapper):
    """Count sample witnesses for each block; emit certified ids.

    The whole sample rides inside the mapper (it is small by
    construction), so the pass is map-only in spirit: one ``n x m``
    kernel call per block, a single tiny reducer to union the ids.
    """

    def __init__(
        self,
        sample: SensitivitySample,
        params: OutlierParams,
        kernel=None,
        metric=None,
    ) -> None:
        self.sample = sample
        self.params = params
        self.kernel = kernel
        self.metric = metric

    def map(self, key, value, ctx: TaskContext):
        yield from self.map_block([(key, value)], ctx)

    def map_block(self, records, ctx: TaskContext):
        if not records:
            return []
        ids = np.asarray([r[0] for r in records], dtype=np.int64)
        points = np.asarray([r[1] for r in records], dtype=float)
        mask, evals = certified_mask(
            points, ids, self.sample, self.params,
            kernel=self.kernel, metric=self.metric,
        )
        certified = ids[mask]
        ctx.add_cost(float(evals))
        ctx.counters.incr("tier", "tasks")
        ctx.counters.incr("tier", "certified", int(mask.sum()))
        ctx.counters.incr("tier", "residue", int((~mask).sum()))
        ctx.counters.incr("tier", "distance_evals", int(evals))
        return [(0, certified.tolist())]


class _UnionReducer(Reducer):
    def reduce(self, key, values, ctx: TaskContext):
        merged: Set[int] = set()
        for ids in values:
            merged.update(int(i) for i in ids)
        # A zero-cost task falls back to wall-clock in the "units"
        # accounting, which would make bench cost_units nondeterministic;
        # charge the union its actual (deterministic) size instead.
        ctx.add_cost(1.0 + float(len(merged)))
        yield key, sorted(merged)


def run_certification(
    runtime: LocalRuntime,
    records: Iterable[tuple],
    sample: SensitivitySample,
    params: OutlierParams,
    kernel=None,
    metric=None,
) -> Tuple[Set[int], Set[int], TierCertification, JobResult]:
    """Run the certification pass as a MapReduce job.

    Returns ``(certified_ids, dropped_ids, certification, job_result)``.
    ``dropped_ids`` (a subset of ``certified_ids``) is the
    :func:`support_halo` complement — certified points no residue query
    can reach, which the detection mapper skips entirely.  The returned
    :class:`JobResult` carries the ``tier`` counter group and the pass's
    deterministic cost units; callers append it to the run's job list so
    reports/benches see the tier work like any other phase.
    """
    records = list(records)
    job = MapReduceJob(
        name="tier-certify",
        mapper=_CertifyMapper(sample, params, kernel=kernel, metric=metric),
        reducer=_UnionReducer(),
        n_reducers=1,  # the certified-id union is tiny and centralized
    )
    # The certify mapper is fully vectorized, so default-sized blocks
    # only buy kernel-call overhead: count witnesses in big strides.
    # Per-point eval counts are blocking-independent (each query's
    # candidate window depends on its own cell), so this is a pure
    # wall-clock knob — certified set and counters stay deterministic.
    result = runtime.run(job, records, block_records=4096)
    certified: Set[int] = set()
    for _, out_ids in result.outputs:
        certified.update(out_ids)
    all_ids = np.asarray([r[0] for r in records], dtype=np.int64)
    all_points = np.asarray([r[1] for r in records], dtype=float)
    cert_mask = np.isin(all_ids, np.fromiter(certified, dtype=np.int64))
    dropped, halo_evals = support_halo(
        all_points, all_ids, cert_mask, params,
        grid=sample.grid, kernel=kernel, metric=metric,
    )
    result.counters.incr("tier", "shuffle_dropped", len(dropped))
    result.counters.incr("tier", "distance_evals", halo_evals)
    cert = TierCertification(
        n_points=result.counters.get("tier", "certified")
        + result.counters.get("tier", "residue"),
        certified=result.counters.get("tier", "certified"),
        sample_size=sample.size,
        bound=params.k,
        distance_evals=result.counters.get("tier", "distance_evals"),
        dropped=len(dropped),
    )
    return certified, dropped, cert, result


def prepare_fast_tier(
    runtime: LocalRuntime,
    records: List[tuple],
    domain: Rect,
    params: OutlierParams,
    n_buckets: int = 1024,
    sample_rate: float = 0.005,
    seed: int = 1,
    n_reducers: int = 1,
    kernel=None,
    metric=None,
    sample_size: Optional[int] = None,
    stats: Optional[MiniBucketStats] = None,
) -> Tuple[Set[int], Set[int], TierCertification, JobResult]:
    """Full fast pass: stats job → sensitivity sample → certify job.

    Returns ``(certified_ids, dropped_ids, certification,
    certify_job_result)``.
    Pass precomputed ``stats`` (e.g. from ``auto`` tier resolution) to
    skip the sampling job.
    """
    if stats is None:
        stats = collect_minibucket_stats(
            runtime, records, domain,
            n_buckets=n_buckets, rate=sample_rate, seed=seed,
            n_reducers=n_reducers,
        )
    ids = np.asarray([r[0] for r in records], dtype=np.int64)
    points = np.asarray([r[1] for r in records], dtype=float)
    sample = build_sensitivity_sample(
        points, ids, stats, params, seed=seed, target_size=sample_size
    )
    return run_certification(
        runtime, records, sample, params, kernel=kernel, metric=metric
    )


def estimated_mean_neighbors(
    stats: MiniBucketStats, params: OutlierParams, ndim: int
) -> Optional[float]:
    """Point-weighted expected neighbor count from mini-bucket stats.

    ``mu = A(p) * sum_b c_b * (c_b / area_b) / sum_b c_b`` — the density
    a random point actually experiences, which on clustered data is far
    above the uniform-domain density.  The zero-area bucket limit is
    normalized *here*: a degenerate grid means every point is stacked on
    every other, so the estimate is ``inf`` (the infinitely-dense limit
    the cost models already clamp) — the raw per-bucket ``inf`` from
    :meth:`MiniBucketStats.bucket_density` never enters a comparison.
    Returns ``None`` when the stats carry no mass (nothing sampled).
    """
    counts = np.asarray(stats.counts, dtype=float)
    total = float(counts.sum())
    if total <= 0:
        return None
    cell_area = stats.grid.cell_rect(stats.grid.unflatten(0)).area
    if cell_area <= 0:
        return float("inf")
    mean_density = float((counts * counts).sum()) / (cell_area * total)
    return mean_density * ball_volume(params.r, ndim)


def pick_tier(
    tier: str,
    n: int,
    area: float,
    params: OutlierParams,
    ndim: int = 2,
    stats: Optional[MiniBucketStats] = None,
) -> str:
    """Resolve ``"auto"`` against the cost model; pass through otherwise.

    With ``stats`` in hand the comparison uses the measured neighbor
    estimate; without, the uniform-density proxy (conservative: it
    under-certifies, so ``auto`` leans exact on data it cannot judge).
    """
    if tier != "auto":
        return tier
    mu = (
        estimated_mean_neighbors(stats, params, ndim)
        if stats is not None else None
    )
    return select_tier(float(n), float(area), params, ndim, mu=mu)
