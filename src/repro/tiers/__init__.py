"""Tiered fast→exact detection (sensitivity-sampled certification)."""

from .fastpass import (
    DEFAULT_TIER,
    TIER_CHOICES,
    TIER_ENV,
    SensitivitySample,
    TierCertification,
    build_sensitivity_sample,
    certified_mask,
    estimated_mean_neighbors,
    pick_tier,
    prepare_fast_tier,
    resolve_tier,
    run_certification,
    support_halo,
)

__all__ = [
    "DEFAULT_TIER",
    "TIER_CHOICES",
    "TIER_ENV",
    "SensitivitySample",
    "TierCertification",
    "build_sensitivity_sample",
    "certified_mask",
    "estimated_mean_neighbors",
    "pick_tier",
    "prepare_fast_tier",
    "resolve_tier",
    "run_certification",
    "support_halo",
]
