"""Durable checkpoint/recovery layer: crash-safe detection runs.

Three pieces, one contract — a killed process never costs correctness,
only the uncommitted fraction of the work:

* :mod:`~repro.recovery.snapshot` — checksummed, versioned, atomically
  written artifacts (the envelope under snapshots and manifests);
* :mod:`~repro.recovery.journal` — the append-only fsynced WAL of
  per-partition verdicts;
* :mod:`~repro.recovery.checkpoint` — :func:`run_checkpointed`, the
  resumable twin of :func:`repro.core.detect_outliers`;
* :mod:`~repro.recovery.diskguard` — typed disk-pressure failures
  (:class:`DiskPressureError`) and the low-watermark probe behind the
  service tier's degrade mode.

Streaming snapshots (:meth:`repro.streaming.StreamingDetector.save`)
build on the same artifact envelope.
"""

from .checkpoint import (
    JOURNAL_FILE,
    MANIFEST_FILE,
    CheckpointedResult,
    CheckpointMismatch,
    dataset_fingerprint,
    read_manifest,
    run_checkpointed,
)
from .diskguard import (
    ENOSPC_AFTER_ENV,
    ENOSPC_AT_ENV,
    DiskPressureError,
    check_watermark,
    free_bytes,
)
from .journal import (
    CHAOS_KILL_ENV,
    JournalCorrupt,
    ResultJournal,
    SimulatedCrash,
)
from .snapshot import (
    SnapshotError,
    canonical_bytes,
    payload_crc32,
    read_artifact,
    write_artifact,
)

__all__ = [
    "CHAOS_KILL_ENV",
    "ENOSPC_AFTER_ENV",
    "ENOSPC_AT_ENV",
    "JOURNAL_FILE",
    "MANIFEST_FILE",
    "CheckpointMismatch",
    "CheckpointedResult",
    "DiskPressureError",
    "JournalCorrupt",
    "ResultJournal",
    "SimulatedCrash",
    "SnapshotError",
    "canonical_bytes",
    "check_watermark",
    "dataset_fingerprint",
    "free_bytes",
    "payload_crc32",
    "read_artifact",
    "read_manifest",
    "run_checkpointed",
    "write_artifact",
]
