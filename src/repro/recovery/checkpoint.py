"""Crash-safe detection: plan once, journal every partition verdict.

:func:`run_checkpointed` is the durable twin of
:func:`repro.core.detect_outliers`.  It persists two artifacts in a
checkpoint directory:

* ``manifest.json`` — the run's identity (dataset fingerprint, params,
  strategy, seed, sizing) plus the serialized partition plan, written
  atomically before any detection work starts;
* ``journal.jsonl`` — the per-partition result WAL
  (:class:`~repro.recovery.journal.ResultJournal`): as each reduce task
  lands in the driver, the verdict of every partition that task owned is
  fsynced to the journal.

A driver killed at any point can be resumed by calling
:func:`run_checkpointed` again with the same inputs (or ``repro
resume``): the manifest revalidates the run identity, committed
partitions are *replayed* from the journal, and only the uncommitted
rest is re-executed — the final outlier set is byte-identical to an
uninterrupted run, because partition verdicts are exact and independent
(Lemma 3.1).

Degradation is always toward recomputation, never toward wrong output:
a corrupt manifest or journal (checksum mismatch) is discarded with a
warning span and a ``recovery`` counter, and the run falls back to a
full re-run.  A manifest that is *valid but describes a different run*
(other dataset, params, or sizing) raises — silently clobbering someone
else's checkpoint is not a recovery.
"""

from __future__ import annotations

import hashlib
import os
import warnings
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from ..allocation import allocate
from ..core.dataset import Dataset
from ..core.pipeline import resolve_strategy
from ..detectors import METRIC_GENERIC_DETECTORS
from ..mapreduce import (
    ClusterConfig,
    Counters,
    DictPartitioner,
    LocalRuntime,
    MapReduceJob,
)
from ..metrics import MetricUnsupported, resolve_metric
from ..observability import Span, Tracer
from ..params import OutlierParams
from ..partitioning import (
    METRIC_SAFE_STRATEGIES,
    MetricSafePartitioner,
    PlanRequest,
    plan_from_dict,
    plan_to_dict,
)
from ..sampling import collect_minibucket_stats
from ..tiers import (
    build_sensitivity_sample,
    pick_tier,
    resolve_tier,
    run_certification,
)
# The routed-records job shape is shared with the streaming subsystem:
# records arrive pre-assigned to partitions and verdicts come back
# tagged ``(pid, outlier_id)``.
from ..streaming.detector import _RoutedMapper, _StreamDODReducer
from .journal import JournalCorrupt, ResultJournal
from .snapshot import SnapshotError, read_artifact, write_artifact

__all__ = [
    "MANIFEST_FILE",
    "JOURNAL_FILE",
    "CheckpointMismatch",
    "CheckpointedResult",
    "dataset_fingerprint",
    "read_manifest",
    "run_checkpointed",
]

MANIFEST_FILE = "manifest.json"
JOURNAL_FILE = "journal.jsonl"
_MANIFEST_KIND = "checkpoint-manifest"
_MANIFEST_VERSION = 1


class CheckpointMismatch(ValueError):
    """The checkpoint directory belongs to a different run."""


def dataset_fingerprint(dataset: Dataset) -> str:
    """Content hash binding a checkpoint to its exact input."""
    digest = hashlib.sha256()
    digest.update(str(dataset.points.shape).encode())
    digest.update(np.ascontiguousarray(dataset.ids).tobytes())
    digest.update(np.ascontiguousarray(dataset.points).tobytes())
    return digest.hexdigest()


@dataclass
class CheckpointedResult:
    """What a checkpointed (possibly resumed) detection produced."""

    outlier_ids: Set[int]
    outliers_by_pid: Dict[int, Set[int]]
    replayed_partitions: List[int]
    executed_partitions: List[int]
    resumed: bool
    counters: Counters
    plan: object = None
    jobs: List = field(default_factory=list)
    trace: Optional[Span] = None
    tier: str = "exact"

    @property
    def n_partitions(self) -> int:
        return len(self.replayed_partitions) + len(
            self.executed_partitions
        )


def read_manifest(checkpoint_dir: str) -> dict:
    """Read a checkpoint manifest (raises :class:`SnapshotError`)."""
    return read_artifact(
        os.path.join(checkpoint_dir, MANIFEST_FILE),
        _MANIFEST_KIND,
        _MANIFEST_VERSION,
    )


def run_checkpointed(
    dataset: Dataset,
    params: OutlierParams,
    checkpoint_dir: str,
    strategy="DMT",
    detector: str = "nested_loop",
    runtime: Optional[LocalRuntime] = None,
    cluster: Optional[ClusterConfig] = None,
    n_partitions: Optional[int] = None,
    n_reducers: Optional[int] = None,
    seed: int = 1,
    tracer: Optional[Tracer] = None,
    abort_after_commits: Optional[int] = None,
    manifest_extra: Optional[dict] = None,
    kernel: Optional[str] = None,
    plan=None,
    metric: Optional[str] = None,
    tier: Optional[str] = None,
) -> CheckpointedResult:
    """Detect outliers with durable per-partition commits.

    Safe to call repeatedly with the same inputs and directory: each
    call replays every journaled partition and executes only the rest.
    ``abort_after_commits`` is the in-process chaos hook — the journal
    raises :class:`~repro.recovery.journal.SimulatedCrash` after that
    many commits (see the module for the SIGKILL environment hook).
    ``manifest_extra`` is stored verbatim in the manifest for tooling
    (the CLI keeps the input path there so ``repro resume`` can reload
    it); it does not participate in run-identity validation.
    ``kernel`` picks the distance backend; it is deliberately *not* part
    of the manifest's run identity (backends are observationally
    identical by the kernel ABI's exactness contract), so a checkpoint
    written under one backend resumes cleanly under another.
    ``metric``, by contrast, *defines* the answer, so it joins the run
    identity: resuming under a different metric raises
    :class:`CheckpointMismatch` rather than mixing verdicts from two
    different distance functions.
    ``tier`` selects the detection tier; ``"auto"`` resolves against the
    cost model *before* the manifest is written, so the identity always
    records a concrete tier ("fast" joins the config the same way a
    non-default metric does — pre-existing exact checkpoints keep their
    exact config dict).  The resolution is a deterministic function of
    the dataset, so re-calling with ``"auto"`` resumes cleanly.
    ``plan`` (optional) supplies a pre-built partition plan for a
    *fresh* run — the warm-worker path of the service tier, where a
    repeat submission of the same dataset skips the sampling
    pre-processing job.  It must have been built with the same inputs
    and sizing; a resumed run ignores it in favor of the manifest's
    plan (the durable identity always wins).
    """
    strategy = resolve_strategy(strategy)
    metric_obj = resolve_metric(metric)
    metric_arg = None if metric_obj.is_euclidean else metric_obj.spec()
    if metric_arg is not None:
        if detector not in METRIC_GENERIC_DETECTORS:
            raise MetricUnsupported(
                f"detector {detector!r} assumes Euclidean geometry; "
                f"metric-generic detectors: "
                f"{sorted(METRIC_GENERIC_DETECTORS)}"
            )
        if strategy.name not in METRIC_SAFE_STRATEGIES:
            strategy = MetricSafePartitioner(metric=metric_obj)
    tier_requested = resolve_tier(tier)
    if tier_requested != "exact" and not strategy.uses_support_area:
        if tier_requested == "fast":
            raise ValueError(
                "the fast tier pre-clears points inside the "
                "supporting-area framework; the Domain baseline has no "
                "supporting areas — use --tier exact or a "
                "supporting-area strategy"
            )
        tier_requested = "exact"  # auto: Domain stays exact
    cluster = cluster or ClusterConfig()
    runtime = runtime or LocalRuntime(cluster)
    tracer = tracer or runtime.tracer or Tracer()
    if n_reducers is None:
        n_reducers = min(cluster.reduce_slots, 64)
    if n_partitions is None:
        n_partitions = 2 * n_reducers
    os.makedirs(checkpoint_dir, exist_ok=True)
    journal_path = os.path.join(checkpoint_dir, JOURNAL_FILE)

    config = {
        "fingerprint": dataset_fingerprint(dataset),
        "r": float(params.r),
        "k": int(params.k),
        "strategy": strategy.name,
        "detector": detector,
        "seed": int(seed),
        "n_partitions": int(n_partitions),
        "n_reducers": int(n_reducers),
    }
    # Joined only for non-Euclidean runs so pre-existing Euclidean
    # checkpoints keep their exact config dict (and stay resumable).
    if metric_arg is not None:
        config["metric"] = metric_arg
    counters = Counters()

    prev_tracer = runtime.tracer
    runtime.tracer = tracer
    try:
        with tracer.span(
            "checkpointed_run", "run",
            checkpoint_dir=checkpoint_dir,
            r=params.r, k=params.k, n_points=dataset.n,
        ) as run_span:
            # Tier work runs before the manifest is read/written: the
            # resolved tier is part of the run identity, and the
            # certified set is a deterministic function of the dataset,
            # so a resumed run recomputes the identical demotions.
            tier_used = tier_requested
            certification = None
            certify_job = None
            certified_ids: frozenset = frozenset()
            dropped_ids: frozenset = frozenset()
            if tier_requested != "exact":
                tier_records = list(dataset.records())
                stats = collect_minibucket_stats(
                    runtime, tier_records, dataset.bounds,
                    n_buckets=int(min(1024, max(64, dataset.n // 20))),
                    rate=min(0.5, max(0.005, 2000 / max(dataset.n, 1))),
                    seed=seed,
                    n_reducers=n_reducers,
                )
                tier_used = pick_tier(
                    tier_requested, dataset.n, dataset.bounds.area,
                    params, dataset.ndim, stats=stats,
                )
                if tier_used == "fast":
                    sample = build_sensitivity_sample(
                        dataset.points, dataset.ids, stats, params,
                        seed=seed,
                    )
                    certified, dropped, certification, certify_job = (
                        run_certification(
                            runtime, tier_records, sample, params,
                            kernel=kernel, metric=metric_arg,
                        )
                    )
                    certified_ids = frozenset(certified)
                    dropped_ids = frozenset(dropped)
                    counters.merge(certify_job.counters)
            if tier_used != "exact":
                # Mirrors the metric rule: only a non-default tier joins
                # the identity, so pre-existing exact checkpoints keep
                # their exact config dict and stay resumable.
                config["tier"] = tier_used
            result = _run(
                dataset, params, checkpoint_dir, journal_path, strategy,
                detector, runtime, n_reducers, n_partitions, seed,
                config, counters, run_span, abort_after_commits,
                manifest_extra, kernel, plan, metric_arg, certified_ids,
                dropped_ids,
            )
            result.tier = tier_used
            if certify_job is not None:
                result.jobs.insert(0, certify_job)
            run_span.annotate(
                resumed=result.resumed,
                partitions_replayed=len(result.replayed_partitions),
                partitions_executed=len(result.executed_partitions),
                n_outliers=len(result.outlier_ids),
            )
            if tier_used != "exact" or tier_requested != "exact":
                run_span.annotate(tier=tier_used)
            if certification is not None:
                run_span.annotate(
                    tier_certified=certification.certified,
                    tier_residue_fraction=certification.residue_fraction,
                    tier_bound=certification.bound,
                    tier_sample_size=certification.sample_size,
                    tier_dropped=certification.dropped,
                )
    finally:
        runtime.tracer = prev_tracer
    result.trace = run_span
    return result


# ----------------------------------------------------------------------
def _run(
    dataset, params, checkpoint_dir, journal_path, strategy, detector,
    runtime, n_reducers, n_partitions, seed, config, counters, run_span,
    abort_after_commits, manifest_extra, kernel, warm_plan, metric,
    certified_ids=frozenset(), dropped_ids=frozenset(),
):
    plan, resumed = _load_or_build_plan(
        dataset, params, checkpoint_dir, journal_path, strategy,
        runtime, n_reducers, n_partitions, seed, config, counters,
        run_span, manifest_extra, warm_plan, metric,
    )

    committed = _replay_journal(
        journal_path, plan, counters, run_span
    ) if resumed else {}

    # Route every record once (the map side's work, paid up front so
    # replayed partitions never touch their points again).
    # Certified points beyond r of every residue point can witness no
    # remaining query (support_halo): they are filtered out before
    # routing, so the assignment scan, the tuple conversions and the
    # per-record loop below all shrink with the drop — that per-record
    # work, not the detector, is what dominates a warm-plan run.
    ids = dataset.ids
    points = dataset.points
    if dropped_ids:
        kept = np.asarray(
            [int(i) not in dropped_ids for i in ids], dtype=bool
        )
        ids = ids[kept]
        points = points[kept]
    core, pairs = plan.assign_batch(points, params.r)
    partition_records: Dict[int, List[tuple]] = {}
    tuples = [tuple(map(float, p)) for p in points]
    for i in range(len(tuples)):
        pid_i = int(ids[i])
        # Tier-certified inliers are demoted to support records in their
        # own core partition: they still serve as neighbors (pools stay
        # complete, Lemma 3.1), but get no verdict of their own.
        tag = 1 if pid_i in certified_ids else 0
        partition_records.setdefault(int(core[i]), []).append(
            (tag, pid_i, tuples[i])
        )
    for row, pid in pairs:
        partition_records.setdefault(int(pid), []).append(
            (1, int(ids[row]), tuples[row])
        )

    all_pids = [p.pid for p in plan.partitions]
    pending = [pid for pid in all_pids if pid not in committed]
    counters.incr("recovery", "partitions_total", len(all_pids))
    counters.incr("recovery", "partitions_replayed", len(committed))
    counters.incr("recovery", "partitions_executed", len(pending))

    outliers_by_pid: Dict[int, Set[int]] = {
        pid: set(outs) for pid, outs in committed.items()
    }
    jobs: List = []
    if pending:
        with ResultJournal.open_for_resume(
            journal_path, abort_after_commits=abort_after_commits
        ) as journal:
            jobs = _detect_pending(
                pending, partition_records, plan, params, detector,
                runtime, n_reducers, journal, counters, run_span,
                outliers_by_pid, kernel, metric,
            )
    for job in jobs:
        counters.merge(job.counters)

    outlier_ids: Set[int] = set()
    for outs in outliers_by_pid.values():
        outlier_ids |= outs
    return CheckpointedResult(
        outlier_ids=outlier_ids,
        outliers_by_pid=outliers_by_pid,
        replayed_partitions=sorted(committed),
        executed_partitions=sorted(pending),
        resumed=resumed,
        counters=counters,
        plan=plan,
        jobs=jobs,
    )


def _load_or_build_plan(
    dataset, params, checkpoint_dir, journal_path, strategy, runtime,
    n_reducers, n_partitions, seed, config, counters, run_span,
    manifest_extra, warm_plan=None, metric=None,
):
    """Return ``(plan, resumed)``; fresh runs write the manifest."""
    manifest_path = os.path.join(checkpoint_dir, MANIFEST_FILE)
    try:
        manifest = read_artifact(
            manifest_path, _MANIFEST_KIND, _MANIFEST_VERSION
        )
    except SnapshotError as exc:
        if exc.reason != "missing":
            counters.incr("recovery", "manifest_discarded")
            run_span.child(
                "manifest_fallback", "event", reason=exc.reason,
            ).finish(warning=str(exc))
            warnings.warn(
                f"checkpoint manifest unusable ({exc}); starting a "
                "fresh run",
                RuntimeWarning,
                stacklevel=4,
            )
        manifest = None

    if manifest is not None:
        if manifest.get("config") != config:
            raise CheckpointMismatch(
                f"{checkpoint_dir} was created by a different run "
                "(dataset, parameters, or sizing differ); use a fresh "
                "--checkpoint-dir or delete it"
            )
        return plan_from_dict(manifest["plan"]), True

    # Fresh run: clear any stale journal *before* the manifest exists,
    # so no window pairs the new manifest with old verdicts.
    if os.path.exists(journal_path):
        os.remove(journal_path)
    if warm_plan is not None:
        # A warm worker already planned this exact (dataset, params,
        # sizing); the manifest still records the plan verbatim, so the
        # resume path never depends on the caller's cache.
        plan = warm_plan
        counters.incr("recovery", "plan_reused")
        run_span.child(
            "plan_reused", "event", strategy=plan.strategy,
        ).finish()
    else:
        request = PlanRequest(
            domain=dataset.bounds,
            params=params,
            n_partitions=n_partitions,
            n_reducers=n_reducers,
            n_buckets=int(min(1024, max(64, dataset.n // 20))),
            sample_rate=min(0.5, max(0.005, 2000 / max(dataset.n, 1))),
            seed=seed,
            metric=metric,
        )
        plan = strategy.timed_plan(
            runtime, list(dataset.records()), request
        )
    write_artifact(
        os.path.join(checkpoint_dir, MANIFEST_FILE),
        _MANIFEST_KIND,
        _MANIFEST_VERSION,
        {
            "config": config,
            "plan": plan_to_dict(plan),
            "extra": manifest_extra or {},
        },
    )
    counters.incr("recovery", "manifest_writes")
    return plan, False


def _replay_journal(journal_path, plan, counters, run_span):
    """Committed ``pid -> outliers`` from the journal, or ``{}``."""
    known = {p.pid for p in plan.partitions}
    try:
        records, torn = ResultJournal.replay(journal_path)
    except JournalCorrupt as exc:
        counters.incr("recovery", "journal_discarded")
        run_span.child(
            "journal_fallback", "event", reason="corrupt",
        ).finish(warning=str(exc))
        warnings.warn(
            f"result journal failed validation ({exc}); re-running "
            "every partition",
            RuntimeWarning,
            stacklevel=5,
        )
        os.remove(journal_path)
        return {}
    committed: Dict[int, List[int]] = {}
    for record in records:
        if record.get("kind") != "partition":
            continue
        pid = int(record["pid"])
        if pid not in known:
            continue
        committed[pid] = [int(x) for x in record["outliers"]]
    if torn:
        counters.incr("recovery", "torn_tail_dropped")
    counters.incr("recovery", "journal_replays")
    span = run_span.child(
        "journal_replay", "event",
        partitions=sorted(committed), torn_tail=torn,
    )
    span.finish()
    return committed


def _detect_pending(
    pending, partition_records, plan, params, detector, runtime,
    n_reducers, journal, counters, run_span, outliers_by_pid, kernel,
    metric=None,
):
    """Run the routed detection job over uncommitted partitions,
    journaling each reduce task's partitions as the task commits."""
    target = sorted(pending)
    records = [
        (pid, record)
        for pid in target
        for record in partition_records.get(pid, ())
    ]
    if not records:
        # Only empty partitions left: their verdicts are vacuous, but
        # each is still a durable commit (and a chaos boundary).
        for pid in target:
            _commit_partitions(
                journal, {pid: []}, [pid], counters, run_span,
                task_id=None,
            )
            outliers_by_pid[pid] = set()
        return []
    alloc = allocate(
        [len(partition_records.get(pid, ())) for pid in target],
        min(n_reducers, len(target)),
    )
    table = {pid: alloc.assignment[i] for i, pid in enumerate(target)}
    pids_by_reducer: Dict[int, List[int]] = defaultdict(list)
    for pid, reducer in table.items():
        pids_by_reducer[reducer].append(pid)
    job = MapReduceJob(
        name=f"ckpt-detect-{plan.strategy}",
        mapper=_RoutedMapper(),
        reducer=_StreamDODReducer(
            params, plan.algorithm_plan, detector, kernel=kernel,
            metric=metric,
        ),
        n_reducers=len(alloc.bin_loads),
        partitioner=DictPartitioner(table),
    )

    def on_commit(phase: str, task_id: int, outputs) -> None:
        if phase != "reduce":
            return
        outs: Dict[int, List[int]] = defaultdict(list)
        for pid, outlier_id in outputs:
            outs[pid].append(outlier_id)
        owned = pids_by_reducer.get(task_id, [])
        _commit_partitions(
            journal, outs, owned, counters, run_span, task_id=task_id
        )
        for pid in owned:
            outliers_by_pid[pid] = set(outs.get(pid, ()))
        # Chain the caller's listener (the service worker hangs its
        # lease heartbeat and run-deadline check here) *after* the
        # journal commit, so what it observes is always durable.
        if prev_listener is not None:
            prev_listener(phase, task_id, outputs)

    prev_listener = runtime.commit_listener
    runtime.commit_listener = on_commit
    try:
        result = runtime.run(job, records)
    finally:
        runtime.commit_listener = prev_listener
    return [result]


def _commit_partitions(
    journal, outs, owned, counters, run_span, task_id
):
    """Journal the verdicts of the partitions one reduce task owned."""
    span = run_span.child(
        "journal_commit", "event",
        partitions=sorted(owned),
    )
    if task_id is not None:
        span.annotate(task_id=task_id)
    try:
        for pid in sorted(owned):
            journal.append(
                "partition",
                pid=int(pid),
                outliers=sorted(int(x) for x in outs.get(pid, ())),
            )
            counters.incr("recovery", "journal_commits")
    finally:
        span.finish()
