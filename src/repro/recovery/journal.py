"""Per-partition result journal: an append-only, checksummed JSONL WAL.

The checkpointed detection driver commits each partition's verdict to
this journal as its reduce task lands.  One record per line::

    {"crc32": ..., "kind": "partition", "outliers": [...],
     "pid": 3, "seq": 7}

The CRC covers the canonical serialization of the record without the
``crc32`` field, and every append is flushed *and fsynced* before the
call returns — a record is either durably committed or absent, which is
exactly the commit-boundary contract the resume path relies on.

Replay semantics distinguish the two ways a journal goes bad:

* **torn tail** — the final line is incomplete or unparsable (the
  classic artifact of a crash mid-append).  The committed prefix is
  kept; the torn record's partition simply re-executes.
* **corruption** — a record parses but fails its checksum, or sequence
  numbers are broken.  The whole journal is untrusted:
  :class:`JournalCorrupt` is raised and the caller degrades to a full
  re-run.  Wrong output is never an outcome.

**Disk pressure**: an append that fails with ``ENOSPC``/``EDQUOT`` (or
trips the ``REPRO_CHAOS_ENOSPC_AFTER_COMMITS`` injector) raises a typed
:class:`~repro.recovery.diskguard.DiskPressureError` — and first
truncates the file back to its last durably-committed length, so the
journal a resume later replays is the clean committed prefix, never a
half-written tail frozen mid-fsync.

Chaos hook: ``REPRO_CHAOS_KILL_AFTER_COMMITS=<n>`` makes the journal
SIGKILL its own process immediately after the ``n``-th durable append —
the process-kill harness uses this to die at an exact commit boundary.
"""

from __future__ import annotations

import json
import os
import signal
import zlib
from typing import Any, Dict, List, Optional, Tuple

from .diskguard import DiskPressureError, injected_enospc_after, is_disk_full

__all__ = ["JournalCorrupt", "SimulatedCrash", "ResultJournal"]

#: Environment variable consumed by the chaos harness: SIGKILL the
#: process right after this many successful appends.
CHAOS_KILL_ENV = "REPRO_CHAOS_KILL_AFTER_COMMITS"


class JournalCorrupt(RuntimeError):
    """A journal record failed validation beyond a torn tail."""


class SimulatedCrash(RuntimeError):
    """In-process stand-in for a driver kill at a commit boundary.

    Raised by :class:`ResultJournal` when ``abort_after_commits`` is
    reached — the exception-based twin of the SIGKILL chaos hook, cheap
    enough for property-based tests to crash at *every* boundary.
    """


def _record_crc(record: Dict[str, Any]) -> int:
    body = {k: v for k, v in record.items() if k != "crc32"}
    blob = json.dumps(
        body, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return zlib.crc32(blob) & 0xFFFFFFFF


class ResultJournal:
    """Append-only JSONL write-ahead log of partition verdicts."""

    def __init__(
        self,
        path: str,
        abort_after_commits: Optional[int] = None,
    ) -> None:
        self.path = path
        self.commits = 0
        self.abort_after_commits = abort_after_commits
        kill_env = os.environ.get(CHAOS_KILL_ENV)
        self._kill_after: Optional[int] = (
            int(kill_env) if kill_env else None
        )
        self._seq = 0
        self._fh = None
        self._durable_bytes: Optional[int] = None

    # -- writing -------------------------------------------------------
    def append(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Durably commit one record; returns the record as written.

        Raises :class:`~repro.recovery.diskguard.DiskPressureError`
        (never a torn journal) when the disk is full: the file is
        truncated back to the last committed record first.
        """
        record: Dict[str, Any] = {"kind": kind, "seq": self._seq}
        record.update(fields)
        record["crc32"] = _record_crc(record)
        if self._fh is None:
            self._fh = open(self.path, "a", encoding="utf-8")
        if self._durable_bytes is None:
            self._durable_bytes = os.fstat(self._fh.fileno()).st_size
        inject_after = injected_enospc_after()
        if inject_after is not None and self.commits >= inject_after:
            raise DiskPressureError(
                self.path, "injected",
                f"chaos: ENOSPC after {self.commits} commits",
            )
        try:
            self._fh.write(
                json.dumps(record, sort_keys=True, separators=(",", ":"))
                + "\n"
            )
            self._fh.flush()
            os.fsync(self._fh.fileno())
        except OSError as exc:
            if is_disk_full(exc):
                self._truncate_to_durable()
                raise DiskPressureError(
                    self.path, "enospc", str(exc)
                ) from exc
            raise
        self._durable_bytes = os.fstat(self._fh.fileno()).st_size
        self._seq += 1
        self.commits += 1
        self._chaos_check()
        return record

    def _truncate_to_durable(self) -> None:
        """Roll the file back to the last fsynced record boundary."""
        try:
            self._fh.close()
        except OSError:  # pragma: no cover - nothing left to flush
            pass
        self._fh = None
        if self._durable_bytes is not None:
            try:
                # Shrinking never needs new blocks, so this works even
                # on a full disk; replay() handles it failing anyway
                # (the tail is torn, the committed prefix survives).
                os.truncate(self.path, self._durable_bytes)
            except OSError:  # pragma: no cover - torn-tail fallback
                pass

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ResultJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _chaos_check(self) -> None:
        if (
            self._kill_after is not None
            and self.commits >= self._kill_after
        ):
            # A real SIGKILL: no finally blocks, no atexit, no flushes —
            # the strongest crash the recovery layer must survive.
            os.kill(os.getpid(), signal.SIGKILL)
        if (
            self.abort_after_commits is not None
            and self.commits >= self.abort_after_commits
        ):
            raise SimulatedCrash(
                f"chaos: aborting after {self.commits} journal commits"
            )

    # -- reading -------------------------------------------------------
    @classmethod
    def replay(cls, path: str) -> Tuple[List[Dict[str, Any]], bool]:
        """Read the committed records of a journal.

        Returns ``(records, torn_tail)``.  A final incomplete/unparsable
        line is dropped (``torn_tail=True``).  A checksum or sequence
        violation anywhere raises :class:`JournalCorrupt` — the caller
        must discard the journal and re-run from scratch.
        """
        try:
            with open(path, "rb") as f:
                blob = f.read()
        except FileNotFoundError:
            return [], False
        try:
            raw = blob.decode("utf-8")
        except UnicodeDecodeError as exc:
            # A bit flip can damage the encoding itself, not just the
            # JSON — still corruption, never a traceback.
            raise JournalCorrupt(
                f"{path}: journal is not valid UTF-8"
            ) from exc
        records: List[Dict[str, Any]] = []
        torn = False
        lines = raw.split("\n")
        # A durably committed record always ends in a newline, so the
        # final split element is either empty or a torn write.
        if lines and lines[-1] != "":
            torn = True
        body_lines = [line for line in lines[:-1] if line != ""]
        for i, line in enumerate(body_lines):
            try:
                record = json.loads(line)
            except ValueError as exc:
                # Newline-terminated lines were durably committed, so an
                # unparsable one is damage, not a torn append.
                raise JournalCorrupt(
                    f"{path}: record {i} is not valid JSON"
                ) from exc
            if not isinstance(record, dict) or "crc32" not in record:
                raise JournalCorrupt(
                    f"{path}: record {i} lacks a checksum"
                )
            if record["crc32"] != _record_crc(record):
                raise JournalCorrupt(
                    f"{path}: record {i} failed its checksum"
                )
            if record.get("seq") != i:
                raise JournalCorrupt(
                    f"{path}: record {i} has sequence {record.get('seq')}"
                )
            records.append(record)
        return records, torn

    @classmethod
    def open_for_resume(cls, path: str, **kwargs) -> "ResultJournal":
        """A journal positioned to append after its committed records."""
        records, _ = cls.replay(path)
        journal = cls(path, **kwargs)
        journal._seq = len(records)
        return journal
