"""Disk-pressure guard: typed ENOSPC failures instead of corrupt WALs.

A full disk is the one failure the recovery layer's fsync discipline
cannot write its way out of — ``write()`` or ``fsync()`` raising
``ENOSPC`` mid-append would otherwise surface as an arbitrary
``OSError`` somewhere inside a commit, with a half-written journal
tail behind it.  This module gives every durable writer one shared
vocabulary:

* :class:`DiskPressureError` — the typed, machine-checkable failure
  the journal and artifact writers raise for ``ENOSPC``/``EDQUOT``
  (and for a breached low-watermark).  The service worker catches it,
  flips the store into *degrade mode* (new submissions rejected with
  ``QueueFull(reason="disk")``), and settles the job as failed with
  ``failure_kind="disk"`` — running work finishes, nothing corrupts.
* :func:`free_bytes` / :func:`check_watermark` — the low-watermark
  probe the serve driver polls so the service degrades *before* the
  kernel starts returning ``ENOSPC``.
* chaos injectors — ``REPRO_CHAOS_ENOSPC_AFTER_COMMITS=<n>`` makes the
  journal raise a synthetic :class:`DiskPressureError` after ``n``
  durable appends, and ``REPRO_CHAOS_ENOSPC_AT=<site>`` fails a single
  named write site (``result`` = the worker's result.json write).
  Both let the fault-matrix harness exercise the full degrade path on
  a machine whose disk is, inconveniently, not full.
"""

from __future__ import annotations

import errno
import os
import shutil
from typing import Optional

__all__ = [
    "DiskPressureError",
    "ENOSPC_AFTER_ENV",
    "ENOSPC_AT_ENV",
    "free_bytes",
    "check_watermark",
    "is_disk_full",
    "injected_enospc_after",
    "maybe_inject_enospc",
]

#: Chaos: raise DiskPressureError after this many successful journal
#: appends (per journal instance).
ENOSPC_AFTER_ENV = "REPRO_CHAOS_ENOSPC_AFTER_COMMITS"
#: Chaos: fail one named write site ("result" = worker result.json).
ENOSPC_AT_ENV = "REPRO_CHAOS_ENOSPC_AT"

_DISK_FULL_ERRNOS = frozenset({errno.ENOSPC, errno.EDQUOT})


class DiskPressureError(OSError):
    """A durable write could not land because the disk is (nearly) full.

    ``reason`` is machine-checkable: ``"enospc"`` (the kernel refused
    the write), ``"watermark"`` (free space fell below the configured
    low watermark), or ``"injected"`` (a chaos hook).  Subclasses
    ``OSError`` so callers that only know about ``ENOSPC`` keep
    working; carries ``errno.ENOSPC`` for the same reason.
    """

    def __init__(self, path: str, reason: str, detail: str = "") -> None:
        message = f"{path}: disk pressure ({reason})"
        if detail:
            message += f": {detail}"
        super().__init__(errno.ENOSPC, message)
        self.path = path
        self.reason = reason
        self.detail = detail


def is_disk_full(exc: BaseException) -> bool:
    """Is this OSError the kernel saying the disk/quota is exhausted?"""
    return (
        isinstance(exc, OSError)
        and exc.errno in _DISK_FULL_ERRNOS
    )


def free_bytes(path: str) -> int:
    """Free bytes on the filesystem holding ``path`` (nearest existing
    ancestor, so it works for paths about to be created)."""
    probe = os.path.abspath(path)
    while not os.path.exists(probe):
        parent = os.path.dirname(probe)
        if parent == probe:  # pragma: no cover - filesystem root
            break
        probe = parent
    return shutil.disk_usage(probe).free


def check_watermark(path: str, low_watermark_bytes: int) -> int:
    """Raise :class:`DiskPressureError` if free space is below the
    watermark; returns the free byte count otherwise.  A watermark of
    0 (or negative) disables the check."""
    free = free_bytes(path)
    if low_watermark_bytes > 0 and free < low_watermark_bytes:
        raise DiskPressureError(
            path, "watermark",
            f"free {free} bytes < low watermark {low_watermark_bytes}",
        )
    return free


# -- chaos injection ----------------------------------------------------
def injected_enospc_after() -> Optional[int]:
    """The journal-append injection threshold, or None when unset."""
    raw = os.environ.get(ENOSPC_AFTER_ENV)
    if raw is None or raw == "":
        return None
    return int(raw)


def maybe_inject_enospc(site: str, path: str) -> None:
    """Raise a synthetic :class:`DiskPressureError` when the named
    write site is targeted by ``REPRO_CHAOS_ENOSPC_AT``."""
    if os.environ.get(ENOSPC_AT_ENV) == site:
        raise DiskPressureError(
            path, "injected", f"chaos: ENOSPC at site {site!r}"
        )
