"""Checksummed, versioned on-disk artifacts (snapshots and manifests).

Every durable file the recovery layer writes — streaming snapshots,
checkpoint manifests — shares one envelope so corruption and version
skew are detected the same way everywhere:

``{"format": "repro-artifact", "kind": ..., "version": ...,
"crc32": ..., "payload": ...}``

The CRC covers the *canonical* JSON serialization of the payload
(sorted keys, no whitespace), so a bit flip anywhere in the payload is
caught on read regardless of how the file was pretty-printed.  Writes
are atomic (temp file in the same directory + ``fsync`` + ``os.replace``
+ directory ``fsync``): a crash mid-save leaves either the previous
artifact or none, never a torn one.

Readers raise :class:`SnapshotError` with a machine-checkable
``reason`` (``missing`` / ``unreadable`` / ``corrupt`` /
``version_mismatch`` / ``kind_mismatch``) so callers can decide which
failures degrade to a clean re-run and which are configuration errors.
"""

from __future__ import annotations

import json
import os
import tempfile
import zlib
from typing import Any

from .diskguard import DiskPressureError, is_disk_full

__all__ = [
    "SnapshotError",
    "canonical_bytes",
    "payload_crc32",
    "write_artifact",
    "read_artifact",
]

_FORMAT = "repro-artifact"


class SnapshotError(Exception):
    """A durable artifact could not be trusted or read.

    ``reason`` is one of ``"missing"``, ``"unreadable"``, ``"corrupt"``,
    ``"version_mismatch"``, ``"kind_mismatch"``.
    """

    def __init__(self, path: str, reason: str, detail: str = "") -> None:
        self.path = path
        self.reason = reason
        self.detail = detail
        message = f"{path}: {reason}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)


def canonical_bytes(payload: Any) -> bytes:
    """Deterministic serialization the checksum is computed over."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def payload_crc32(payload: Any) -> int:
    return zlib.crc32(canonical_bytes(payload)) & 0xFFFFFFFF


def write_artifact(path: str, kind: str, version: int, payload: Any) -> None:
    """Atomically write a checksummed artifact to ``path``.

    A full disk raises a typed
    :class:`~repro.recovery.diskguard.DiskPressureError`; the write is
    staged in a temp file, so the previous artifact (or its absence) is
    untouched either way.
    """
    body = {
        "format": _FORMAT,
        "kind": kind,
        "version": version,
        "crc32": payload_crc32(payload),
        "payload": payload,
    }
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w") as f:
            json.dump(body, f, indent=1)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except BaseException as exc:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        if is_disk_full(exc) and not isinstance(exc, DiskPressureError):
            raise DiskPressureError(path, "enospc", str(exc)) from exc
        raise
    # Make the rename itself durable: fsync the containing directory.
    dir_fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def read_artifact(path: str, kind: str, version: int) -> Any:
    """Read and validate an artifact; return its payload.

    Raises :class:`SnapshotError` on any problem — the caller chooses
    whether that degrades to a fresh run or aborts.
    """
    try:
        with open(path, "rb") as f:
            blob = f.read()
    except FileNotFoundError:
        raise SnapshotError(path, "missing") from None
    except OSError as exc:
        raise SnapshotError(path, "unreadable", str(exc)) from exc
    try:
        raw = blob.decode("utf-8")
    except UnicodeDecodeError as exc:
        # Bit flips can break the encoding before they break the JSON.
        raise SnapshotError(
            path, "corrupt", f"not UTF-8: {exc}"
        ) from exc
    try:
        body = json.loads(raw)
    except ValueError as exc:
        raise SnapshotError(path, "corrupt", f"not JSON: {exc}") from exc
    if not isinstance(body, dict) or body.get("format") != _FORMAT:
        raise SnapshotError(path, "corrupt", "missing artifact envelope")
    if body.get("kind") != kind:
        raise SnapshotError(
            path, "kind_mismatch",
            f"expected {kind!r}, found {body.get('kind')!r}",
        )
    if body.get("version") != version:
        raise SnapshotError(
            path, "version_mismatch",
            f"expected {version}, found {body.get('version')!r}",
        )
    payload = body.get("payload")
    expected = body.get("crc32")
    actual = payload_crc32(payload)
    if expected != actual:
        raise SnapshotError(
            path, "corrupt",
            f"crc32 mismatch: stored {expected}, computed {actual}",
        )
    return payload
