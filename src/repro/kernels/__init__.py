"""Pluggable distance-kernel backends for the scan-based detectors.

Every scan-based detector routes its inner loop through one narrow ABI
(:class:`~repro.kernels.base.Kernel`), so the whole system — batch,
streaming, checkpointed, and benched — picks its distance backend with
one knob:

* ``python`` — the scalar reference loop; slow, but the oracle the
  differential CI job holds every other backend to.
* ``numpy``  — tiled vectorized scan with masked early termination; the
  default, identical results at an order-of-magnitude lower wall time on
  ``distance_evals``-bound workloads.
* ``numba``  — optional JIT-compiled scalar loop behind a feature flag;
  selecting it without numba installed fails with a clear
  :class:`KernelUnavailable`, never an ImportError.

Selection precedence: an explicit kernel (``--kernel`` / ``kernel=``
argument) wins; ``"auto"``/``None`` consults the ``REPRO_KERNEL``
environment variable; otherwise :data:`DEFAULT_KERNEL` applies.  See
``docs/kernels.md``.
"""

from __future__ import annotations

import os

from .base import Kernel, KernelUnavailable
from .numba_backend import NumbaKernel, numba_available
from .numpy_backend import NumpyKernel
from .python_backend import PythonKernel

__all__ = [
    "Kernel",
    "KernelUnavailable",
    "PythonKernel",
    "NumpyKernel",
    "NumbaKernel",
    "KERNEL_REGISTRY",
    "KERNEL_CHOICES",
    "DEFAULT_KERNEL",
    "KERNEL_ENV",
    "available_kernels",
    "kernel_available",
    "make_kernel",
    "resolve_kernel",
    "numba_available",
]

#: Backend registry: name -> constructor (all accept ``tile=``).
KERNEL_REGISTRY: dict[str, type[Kernel]] = {
    PythonKernel.name: PythonKernel,
    NumpyKernel.name: NumpyKernel,
    NumbaKernel.name: NumbaKernel,
}

#: What a ``--kernel`` flag accepts.
KERNEL_CHOICES = ("auto",) + tuple(KERNEL_REGISTRY)

#: Backend used when nothing is requested anywhere.
DEFAULT_KERNEL = "numpy"

#: Environment override consulted by ``"auto"`` resolution.
KERNEL_ENV = "REPRO_KERNEL"


def kernel_available(name: str) -> bool:
    """True iff ``name`` is registered and can run here."""
    if name not in KERNEL_REGISTRY:
        return False
    if name == NumbaKernel.name:
        return numba_available()
    return True


def available_kernels() -> list[str]:
    """Registered backends that can actually run in this environment."""
    return [name for name in KERNEL_REGISTRY if kernel_available(name)]


def make_kernel(name: str, tile: int = 256) -> Kernel:
    """Instantiate a backend by name.

    Raises ``ValueError`` for unknown names and ``KernelUnavailable``
    when the backend's optional dependency is missing.
    """
    try:
        cls = KERNEL_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel {name!r}; known: {sorted(KERNEL_REGISTRY)}"
        ) from None
    return cls(tile=tile)


def resolve_kernel(spec=None, tile: int = 256) -> Kernel:
    """Turn a kernel spec into a ready instance.

    ``spec`` may be a :class:`Kernel` instance (returned as-is, so a
    caller can aggregate stats across several scans), a registry name,
    or ``None``/``"auto"`` — which consults ``REPRO_KERNEL`` and falls
    back to :data:`DEFAULT_KERNEL`.
    """
    if isinstance(spec, Kernel):
        return spec
    if spec is None or spec == "auto":
        spec = os.environ.get(KERNEL_ENV) or DEFAULT_KERNEL
    if not isinstance(spec, str):
        raise TypeError(
            f"kernel spec must be a name or Kernel, got {type(spec)!r}"
        )
    return make_kernel(spec, tile=tile)
