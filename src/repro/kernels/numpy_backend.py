"""The ``numpy`` backend: query-block x candidate-tile batched scan.

Candidates are processed in tiles; each tile evaluates a dense
(undecided-queries x tile) distance matrix, then a cumulative-count
mask recovers, per query, the exact position where a scalar loop would
have stopped.  Queries decided inside a tile leave the working set, so
later tiles shrink — masked early termination at tile granularity, with
*charged* evals kept scalar-faithful at candidate granularity:

* a query whose cumulative count reaches ``need`` at tile column ``j`` is
  charged ``j + 1`` evals for that tile (its scalar stop position) and
  its count is pinned at exactly ``need``, the scalar stop count;
* an undecided query is charged the whole tile and keeps its exact count.

The dense products the tile actually computed (including the part past
each stop position) are reported as ``evals_computed`` — the price of
batching, visible in the ``kernel`` counter group as the
charged/computed ratio.

Tile widths grow geometrically from ``~2 x need`` up to the ``tile``
cap: on early-exit-friendly workloads most queries stop within their
first few dozen candidates, so a fixed wide tile would compute an order
of magnitude more distances than the scalar loop charges and hand the
vectorization win straight back.  Narrow first tiles keep the overshoot
bounded while survivors still get full-width batches.  Tiling width
never affects results — the cumulative-count mask reconstructs the same
scalar stop positions under any split.
"""

from __future__ import annotations

import numpy as np

from .base import Kernel

__all__ = ["NumpyKernel"]


class NumpyKernel(Kernel):
    """Tiled vectorized scan with masked early termination."""

    name = "numpy"

    def _count(
        self,
        queries: np.ndarray,
        candidates: np.ndarray,
        r: float,
        need: int,
    ) -> tuple[np.ndarray, int, int]:
        r2 = r * r
        counts = np.zeros(queries.shape[0], dtype=np.int64)
        undecided = np.arange(queries.shape[0])
        charged = 0
        computed = 0
        width = max(8, min(self.tile, 2 * need))
        start = 0
        while start < candidates.shape[0] and undecided.size:
            block = candidates[start:start + width]
            start += block.shape[0]
            width = min(self.tile, 2 * width)
            q = queries[undecided]
            # Per-coordinate accumulation, in coordinate order: the same
            # float ops the scalar oracle performs, so d2 is bitwise
            # identical (no a^2+b^2-2ab expansion, whose rounding could
            # flip exact boundary distances) — and ~8x faster than a
            # (n_q, tile, d) broadcast by skipping the 3-D intermediate.
            d2 = np.square(q[:, 0, None] - block[None, :, 0])
            for j in range(1, q.shape[1]):
                d2 += np.square(q[:, j, None] - block[None, :, j])
            computed += q.shape[0] * block.shape[0]
            within = d2 <= r2
            cumulative = counts[undecided, None] + np.cumsum(within, axis=1)
            reached = cumulative >= need
            decided_here = reached[:, -1]
            if decided_here.any():
                stop_at = reached[decided_here].argmax(axis=1) + 1
                charged += int(stop_at.sum())
                # Scalar stop count: the running count the moment it hit
                # ``need`` — not the tile's full match count.
                counts[undecided[decided_here]] = need
            still = ~decided_here
            charged += int(still.sum()) * block.shape[0]
            counts[undecided[still]] += within[still].sum(axis=1)
            undecided = undecided[still]
        return counts, charged, computed
