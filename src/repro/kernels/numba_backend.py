"""The ``numba`` backend: the scalar loop, JIT-compiled (optional).

numba is a *feature-flagged* dependency — it is never imported at package
import time, only when a :class:`NumbaKernel` is actually constructed, and
a missing installation raises :class:`~repro.kernels.base.KernelUnavailable`
with remediation instead of an ImportError.  ``repro.kernels`` therefore
works identically with or without numba installed; the ``no-numba`` CI job
proves the degradation path stays clean.

The compiled body is the :class:`~repro.kernels.python_backend.PythonKernel`
loop verbatim, so charged evals equal computed evals and the differential
suite can hold it to the same oracle.
"""

from __future__ import annotations

import numpy as np

from .base import Kernel, KernelUnavailable

__all__ = ["NumbaKernel", "numba_available"]

_scan_jit = None  # compiled lazily, cached at module level


def numba_available() -> bool:
    """True iff the optional numba dependency can be imported."""
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


def _compiled_scan():
    global _scan_jit
    if _scan_jit is None:
        try:
            import numba
        except ImportError as exc:
            raise KernelUnavailable(
                "kernel 'numba' needs the optional numba package "
                "(pip install 'repro[numba]'); the 'numpy' backend is "
                "the drop-in default"
            ) from exc

        @numba.njit(cache=False)
        def scan(queries, candidates, r2, need):
            n_q = queries.shape[0]
            n_c = candidates.shape[0]
            ndim = queries.shape[1]
            counts = np.zeros(n_q, dtype=np.int64)
            evals = 0
            for i in range(n_q):
                found = 0
                for j in range(n_c):
                    evals += 1
                    acc = 0.0
                    for t in range(ndim):
                        diff = queries[i, t] - candidates[j, t]
                        acc += diff * diff
                    if acc <= r2:
                        found += 1
                        if found >= need:
                            break
                counts[i] = found
            return counts, evals

        _scan_jit = scan
    return _scan_jit


class NumbaKernel(Kernel):
    """JIT-compiled scalar scan; raises ``KernelUnavailable`` without
    numba installed (construction-time, so failures are early and
    actionable)."""

    name = "numba"

    def __init__(self, tile: int = 256) -> None:
        super().__init__(tile=tile)
        self._scan = _compiled_scan()

    def _count(
        self,
        queries: np.ndarray,
        candidates: np.ndarray,
        r: float,
        need: int,
    ) -> tuple[np.ndarray, int, int]:
        counts, evals = self._scan(queries, candidates, r * r, need)
        return counts, int(evals), int(evals)
