"""The ``python`` backend: the scalar reference loop, kept as the oracle.

This is deliberately the dumbest possible implementation of the contract
in :mod:`repro.kernels.base` — one query at a time, one candidate at a
time, plain float arithmetic — because its job is to *define* the
semantics the batched backends must reproduce byte for byte.  The
differential CI job diffs every other backend against this one; its
slowness is also what the bench harness's kernel axis measures the
``numpy`` speedup against.
"""

from __future__ import annotations

import numpy as np

from .base import Kernel, scalar_metric_count

__all__ = ["PythonKernel"]


class PythonKernel(Kernel):
    """Scalar per-point scan; charged evals equal computed evals."""

    name = "python"

    def _count_metric(self, queries, candidates, r, need, metric):
        # Always the scalar reference loop — even for vectorizable
        # metrics — so this backend stays the oracle the tiled metric
        # path is diffed against.
        return scalar_metric_count(queries, candidates, r, need, metric)

    def _count(
        self,
        queries: np.ndarray,
        candidates: np.ndarray,
        r: float,
        need: int,
    ) -> tuple[np.ndarray, int, int]:
        r2 = r * r
        counts = np.zeros(queries.shape[0], dtype=np.int64)
        evals = 0
        cand_rows = candidates.tolist()
        for i, q in enumerate(queries.tolist()):
            found = 0
            examined = 0
            for row in cand_rows:
                examined += 1
                acc = 0.0
                for a, b in zip(q, row):
                    diff = a - b
                    acc += diff * diff
                if acc <= r2:
                    found += 1
                    if found >= need:
                        break
            counts[i] = found
            evals += examined
        return counts, evals, evals
