"""The distance-kernel ABI: one narrow contract every backend satisfies.

A *kernel* evaluates one block of query points against one block of
candidate points under the early-exit-at-``need`` scan semantics of
Lemma 4.1 — the inner loop every scan-based detector (Nested-Loop, the
Cell-Based fallback, the ring fallback) spends its time in.  Keeping the
contract this narrow is what lets backends swap freely: the scalar
``python`` oracle, the tiled ``numpy`` backend, and the optional compiled
``numba`` backend must all be *observationally identical* — same counts,
same ``distance_evals`` — so switching backends can only ever change wall
time, never results or deterministic cost accounting.

Contract (enforced by :meth:`Kernel.count_neighbors`, verified by the
differential suite in ``tests/test_kernel_equivalence.py``):

* Candidates are examined **in the order given**.  Callers that need the
  random-order scan permute candidates first (``repro.detectors._scan``).
* For each query the scan behaves like the scalar loop: examine
  candidates one at a time, increment the running count on each match
  (``d <= r``), and stop *immediately* when the count reaches ``need``.
* ``counts[i]`` is the running count at the moment the scan stopped:
  exactly ``need`` for early-terminated queries, the exact total
  (``< need``) otherwise.  Equivalently ``min(total_matches, need)``.
* ``distance_evals`` charges each query the number of candidates a
  scalar loop would have examined: the 1-based position of its
  ``need``-th match, or the full candidate count if it never terminated.
  Backends may *compute* more distances than they charge (tile rounding);
  the overshoot is reported separately as ``evals_computed``.
* ``need <= 0`` means every query is decided before examining anything:
  zero counts, zero evals.  Empty query or candidate blocks likewise
  charge nothing.

Instances additionally accumulate ``calls`` / ``evals_charged`` /
``evals_computed`` / ``wall_seconds`` across calls, which the detectors
surface in result extras and the reducers roll into the ``kernel``
counter group.  ``wall_seconds`` times only the backend body, so the
bench harness can compare backends on exactly the work they vectorize.
"""

from __future__ import annotations

import abc
import time

import numpy as np

__all__ = ["Kernel", "KernelUnavailable", "scalar_metric_count"]


class KernelUnavailable(RuntimeError):
    """The requested backend cannot run here (missing optional dep)."""


class Kernel(abc.ABC):
    """One distance-kernel backend.

    ``tile`` is the vectorization width (candidates per tile) for batched
    backends; scalar backends accept and ignore it so every backend can be
    constructed uniformly.
    """

    #: Registry name ("python", "numpy", "numba").
    name: str = "kernel"

    def __init__(self, tile: int = 256) -> None:
        if tile < 1:
            raise ValueError("tile must be >= 1")
        self.tile = tile
        self.calls = 0
        self.evals_charged = 0
        self.evals_computed = 0
        self.wall_seconds = 0.0

    # ------------------------------------------------------------------
    def count_neighbors(
        self,
        queries: np.ndarray,
        candidates: np.ndarray,
        r: float,
        need: int,
        metric=None,
    ) -> tuple[np.ndarray, int]:
        """Scan ``candidates`` (in order) for each query; early exit at
        ``need`` matches.  Returns ``(counts, distance_evals)`` under the
        module-level contract.

        ``metric`` selects the distance: ``None`` or the Euclidean
        metric keeps the backend's native squared-distance fast path
        (``_count``); any other :class:`~repro.metrics.Metric` routes
        through the metric-generic path (``_count_metric``) — tiled
        ``within_block`` batches when the metric vectorizes, the scalar
        reference loop otherwise — under the same counts/charged
        contract.
        """
        queries = np.ascontiguousarray(queries, dtype=np.float64)
        candidates = np.ascontiguousarray(candidates, dtype=np.float64)
        if queries.ndim != 2:
            raise ValueError("queries must be (n, d)")
        if candidates.ndim != 2 or (
            candidates.shape[0] and candidates.shape[1] != queries.shape[1]
        ):
            raise ValueError("candidates must be (m, d) with matching d")
        n_q = queries.shape[0]
        counts = np.zeros(n_q, dtype=np.int64)
        self.calls += 1
        # A scalar loop checks "found >= need" before each evaluation, so
        # need <= 0 (or nothing to scan) terminates without charging a
        # single distance — the partial-block accounting fix of ISSUE 6.
        if need <= 0 or n_q == 0 or candidates.shape[0] == 0:
            return counts, 0
        start = time.perf_counter()
        if metric is None or metric.is_euclidean:
            counts, charged, computed = self._count(
                queries, candidates, float(r), int(need)
            )
        else:
            counts, charged, computed = self._count_metric(
                queries, candidates, float(r), int(need), metric
            )
        self.wall_seconds += time.perf_counter() - start
        self.evals_charged += charged
        self.evals_computed += computed
        return counts, charged

    @abc.abstractmethod
    def _count(
        self,
        queries: np.ndarray,
        candidates: np.ndarray,
        r: float,
        need: int,
    ) -> tuple[np.ndarray, int, int]:
        """Backend body; inputs are validated, non-empty, ``need >= 1``.

        Returns ``(counts, evals_charged, evals_computed)``.
        """

    # ------------------------------------------------------------------
    def _count_metric(
        self,
        queries: np.ndarray,
        candidates: np.ndarray,
        r: float,
        need: int,
        metric,
    ) -> tuple[np.ndarray, int, int]:
        """Metric-generic body for non-Euclidean spaces.

        The default picks the tiled ``within_block`` batch path when the
        metric vectorizes and the scalar reference loop otherwise; the
        scalar ``python`` oracle overrides this to stay scalar always.
        Both paths reconstruct scalar stop positions exactly, so they
        return identical ``(counts, charged)`` — only ``computed``
        (tile overshoot) differs.
        """
        if metric.vectorized:
            return self._count_metric_tiled(
                queries, candidates, r, need, metric
            )
        return scalar_metric_count(queries, candidates, r, need, metric)

    def _count_metric_tiled(
        self,
        queries: np.ndarray,
        candidates: np.ndarray,
        r: float,
        need: int,
        metric,
    ) -> tuple[np.ndarray, int, int]:
        # Same masked-early-termination machinery as the numpy Euclidean
        # tile, with the metric's within_block supplying the match matrix.
        counts = np.zeros(queries.shape[0], dtype=np.int64)
        undecided = np.arange(queries.shape[0])
        charged = 0
        computed = 0
        width = max(8, min(self.tile, 2 * need))
        start = 0
        while start < candidates.shape[0] and undecided.size:
            block = candidates[start:start + width]
            start += block.shape[0]
            width = min(self.tile, 2 * width)
            q = queries[undecided]
            within = metric.within_block(q, block, r)
            computed += q.shape[0] * block.shape[0]
            cumulative = counts[undecided, None] + np.cumsum(within, axis=1)
            reached = cumulative >= need
            decided_here = reached[:, -1]
            if decided_here.any():
                stop_at = reached[decided_here].argmax(axis=1) + 1
                charged += int(stop_at.sum())
                counts[undecided[decided_here]] = need
            still = ~decided_here
            charged += int(still.sum()) * block.shape[0]
            counts[undecided[still]] += within[still].sum(axis=1)
            undecided = undecided[still]
        return counts, charged, computed


def scalar_metric_count(
    queries: np.ndarray,
    candidates: np.ndarray,
    r: float,
    need: int,
    metric,
) -> tuple[np.ndarray, int, int]:
    """The scalar reference loop for an arbitrary metric.

    Defines the semantics the tiled metric path must reproduce — one
    candidate at a time, stop at the ``need``-th match, charge the stop
    position.  ``metric.within`` shares its arithmetic with
    ``within_block`` (singleton blocks), so boundary distances agree
    between this loop and the batches.
    """
    counts = np.zeros(queries.shape[0], dtype=np.int64)
    evals = 0
    for i in range(queries.shape[0]):
        q = queries[i]
        found = 0
        examined = 0
        for j in range(candidates.shape[0]):
            examined += 1
            if metric.within(q, candidates[j], r):
                found += 1
                if found >= need:
                    break
        counts[i] = found
        evals += examined
    return counts, evals, evals
