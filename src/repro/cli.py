"""Command-line interface.

Subcommands::

    python -m repro generate --kind state --name MA -n 30000 -o data.csv
    python -m repro detect data.csv -r 2.0 -k 12 --strategy DMT -o out.json
    python -m repro detect data.csv -r 2.0 -k 12 --trace-out run.jsonl
    python -m repro detect data.csv -r 2.0 -k 12 --workers 4 --transport shm
    python -m repro detect data.csv -r 2.0 -k 12 --kernel python
    python -m repro detect data.csv -r 2.0 -k 12 --append day2.csv
    python -m repro detect data.csv -r 2.0 -k 12 --checkpoint-dir ckpt/
    python -m repro resume ckpt/
    python -m repro stream data.csv -r 2.0 -k 12 --batch-size 500
    python -m repro stream data.csv -r 2.0 -k 12 --snapshot state.json
    python -m repro serve --spool spool/ --workers 4
    python -m repro submit data.csv -r 2.0 -k 12 --spool spool/ --tenant acme
    python -m repro status 3 --spool spool/
    python -m repro result 3 --spool spool/ --timeout 60
    python -m repro cancel 3 --spool spool/
    python -m repro clean-shm --dry-run
    python -m repro trace run.jsonl
    python -m repro plan data.csv -r 2.0 -k 12 --strategy DMT -o plan.json
    python -m repro info data.csv
    python -m repro bench --quick --check benchmarks/baselines/bench_smoke.json
    python -m repro bench --stream --quick
    python -m repro bench --recovery --quick
    python -m repro bench --service --quick

Exit codes: 0 success, 1 gate/consistency failure, 2 usage or input
error, 3 transient service condition (queue full, result timeout).

CSV format: one point per line, ``x,y[,z...]``; an optional leading
``id`` column is accepted with ``--with-ids``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import numpy as np

from . import data as datagen
from .core import Dataset, detect_outliers, resolve_strategy
from .kernels import KERNEL_CHOICES, KernelUnavailable, resolve_kernel
from .metrics import METRIC_CHOICES, MetricUnsupported, resolve_metric
from .mapreduce import (
    TRANSPORTS,
    ClusterConfig,
    LocalRuntime,
    ParallelRuntime,
    SchedulerConfig,
)
from .observability import RunReport, render_report
from .params import OutlierParams
from .partitioning import PlanRequest, save_plan
from .tiers import TIER_CHOICES, resolve_tier

__all__ = ["main", "CLIError"]


class CLIError(Exception):
    """A user-facing failure: printed as ``error: ...``, exit code 2.

    The boundary between "the tool is broken" (traceback, please file a
    bug) and "the invocation is wrong or the input is bad" (clear
    message, no traceback).
    """


#: Rows diverted by ``--quarantine-out`` across the current command —
#: surfaced as the ``rows_quarantined`` counter in JSON reports.
_last_quarantined = 0


def _reset_quarantine_counter() -> None:
    """Zero the row-quarantine counter at command entry.

    Commands that read ``_last_quarantined`` must call this first:
    the module-level counter would otherwise accumulate across
    in-process invocations (tests, embedding callers that invoke
    ``_cmd_*`` directly) and over-report ``rows_quarantined``.
    """
    global _last_quarantined
    _last_quarantined = 0


def _load_dataset(
    path: str, with_ids: bool, quarantine_out: str | None = None
) -> Dataset:
    from .data.io import finite_row_mask

    source = sys.stdin if path == "-" else path
    try:
        raw = np.loadtxt(source, delimiter=",", ndmin=2)
    except FileNotFoundError:
        raise CLIError(f"input file not found: {path}") from None
    except (OSError, ValueError) as exc:
        # np.loadtxt raises ValueError for ragged rows (dimension
        # mismatch) and unparsable fields alike.
        raise CLIError(
            f"could not read {path} as CSV points: {exc}"
        ) from exc
    if raw.shape[0] == 0:
        raise CLIError(f"{path}: no points")
    if with_ids and raw.shape[1] < 2:
        raise CLIError(
            f"{path}: --with-ids needs an id column plus at least one "
            "coordinate column"
        )
    coords = raw[:, 1:] if with_ids else raw
    mask = finite_row_mask(coords)
    n_bad = int((~mask).sum())
    global _last_quarantined
    _last_quarantined += n_bad if quarantine_out is not None else 0
    if n_bad:
        if quarantine_out is None:
            raise CLIError(
                f"{path}: {n_bad} rows have NaN/inf coordinates; fix "
                "the input or pass --quarantine-out FILE to divert "
                "them and continue"
            )
        np.savetxt(quarantine_out, raw[~mask], delimiter=",", fmt="%.8g")
        print(
            f"quarantined {n_bad} rows with non-finite coordinates "
            f"-> {quarantine_out}",
            file=sys.stderr,
        )
        raw = raw[mask]
        if raw.shape[0] == 0:
            raise CLIError(f"{path}: every row was quarantined")
    if with_ids:
        return Dataset(raw[:, 1:], raw[:, 0].astype(np.int64))
    return Dataset.from_points(raw)


def _validate_runtime_flags(args) -> tuple[list, list]:
    """Reject or call out nonsensical runtime/scheduler flag combos.

    Returns ``(errors, warnings)``: errors abort the command (exit 2),
    warnings go to stderr but the run proceeds.
    """
    errors: list[str] = []
    warnings: list[str] = []
    if args.workers == 0 and args.transport != "pickle":
        errors.append(
            f"--transport {args.transport} requires --workers > 0: "
            "serial execution is in-process and never dispatches "
            "task payloads"
        )
    if args.speculate and args.workers == 0:
        errors.append(
            "--speculate requires --workers > 0: the serial runtime "
            "runs one attempt at a time, so a duplicate straggler "
            "attempt could never overlap the original"
        )
    if args.timeout is not None and args.timeout <= 0:
        errors.append("--timeout must be positive")
    try:
        # Fail here, before any data is read, when the requested
        # backend's optional dependency is missing.
        resolve_kernel(getattr(args, "kernel", None))
    except KernelUnavailable as exc:
        errors.append(str(exc))
    try:
        # Same early-exit policy for a malformed --metric spec.
        resolve_metric(getattr(args, "metric", None))
    except (ValueError, MetricUnsupported) as exc:
        errors.append(str(exc))
    try:
        resolve_tier(getattr(args, "tier", None))
    except ValueError as exc:
        errors.append(str(exc))
    if args.speculate and args.timeout is None and not errors:
        warnings.append(
            "warning: --speculate without --timeout: stragglers are "
            "duplicated once detected, but a hung original attempt is "
            "never reaped; consider adding --timeout"
        )
    return errors, warnings


def _enforce_runtime_flags(args) -> int:
    """Print validation results; non-zero = abort the command."""
    errors, warnings = _validate_runtime_flags(args)
    for message in warnings:
        print(message, file=sys.stderr)
    for message in errors:
        print(f"error: {message}", file=sys.stderr)
    return 2 if errors else 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "state":
        dataset = datagen.state_dataset(args.name, n=args.n,
                                        seed=args.seed)
    elif args.kind == "region":
        dataset = datagen.region_dataset(args.name, base_n=args.n,
                                         seed=args.seed)
    elif args.kind == "tiger":
        dataset = datagen.tiger_like(n=args.n, seed=args.seed)
    elif args.kind == "uniform":
        dataset = datagen.density_dataset(args.n, args.density,
                                          seed=args.seed)
    else:  # pragma: no cover - argparse restricts choices
        raise AssertionError(args.kind)
    np.savetxt(args.output, dataset.points, delimiter=",", fmt="%.8g")
    print(f"wrote {dataset.n} points to {args.output}")
    return 0


def _detect(args: argparse.Namespace):
    dataset = _load_dataset(
        args.input, args.with_ids,
        getattr(args, "quarantine_out", None),
    )
    params = OutlierParams(r=args.r, k=args.k)
    cluster = ClusterConfig(nodes=args.nodes)
    return dataset, params, cluster


def _build_runtime(args: argparse.Namespace, cluster: ClusterConfig):
    """Runtime + scheduler policy from the detect subcommand's flags."""
    scheduler = SchedulerConfig(
        max_attempts=args.max_attempts,
        timeout=args.timeout,
        backoff_base=args.backoff,
        seed=args.seed,
        speculate=args.speculate,
        speculation_threshold=args.straggler_threshold,
        degradation=args.degrade,
    )
    if args.workers > 0:
        return ParallelRuntime(
            cluster, workers=args.workers, scheduler=scheduler,
            transport=args.transport,
        )
    if args.transport != "pickle":
        print(
            f"note: --transport {args.transport} needs --workers > 0; "
            "running serially (in-process, no dispatch transport)",
            file=sys.stderr,
        )
    return LocalRuntime(cluster, scheduler=scheduler)


def _write_report(report: dict, output: str | None) -> None:
    text = json.dumps(report, indent=2)
    if output:
        with open(output, "w") as f:
            f.write(text)
        print(f"{report['n_outliers']} outliers -> {output}")
    else:
        print(text)


def _cmd_detect(args: argparse.Namespace) -> int:
    _reset_quarantine_counter()
    code = _enforce_runtime_flags(args)
    if code:
        return code
    if args.checkpoint_dir:
        if args.append:
            raise CLIError(
                "--checkpoint-dir journals a single detection run; it "
                "cannot be combined with --append (snapshot the stream "
                "with 'repro stream --snapshot' instead)"
            )
        return _detect_checkpointed(args)
    if args.append:
        return _detect_append(args)
    dataset, params, cluster = _detect(args)
    result = detect_outliers(
        dataset, params, strategy=args.strategy,
        detector=args.detector, cluster=cluster, seed=args.seed,
        runtime=_build_runtime(args, cluster), kernel=args.kernel,
        metric=args.metric, tier=args.tier,
    )
    report = {
        "n_points": dataset.n,
        "params": {"r": params.r, "k": params.k},
        "strategy": result.strategy,
        "kernel": resolve_kernel(args.kernel).name,
        "metric": resolve_metric(args.metric).spec(),
        "tier": result.tier,
        "outliers": sorted(result.outlier_ids),
        "n_outliers": len(result.outlier_ids),
        "detector_usage": result.run.detector_usage,
        "breakdown_seconds": result.breakdown(),
        "load_imbalance": result.load_imbalance,
    }
    if result.certification is not None:
        report["tier_certified"] = result.certification.certified
        report["tier_bound"] = result.certification.bound
        report["residue_fraction"] = result.certification.residue_fraction
        report["tier_dropped"] = result.certification.dropped
    if args.quarantine_out:
        report["rows_quarantined"] = _last_quarantined
    if args.trace_out:
        run_report = result.report(
            straggler_threshold=args.straggler_threshold
        )
        run_report.save(args.trace_out)
        print(f"trace report -> {args.trace_out}")
    _write_report(report, args.output)
    return 0


def _checkpoint_report(result, params, metric: str) -> dict:
    report = {
        "params": {"r": params.r, "k": params.k},
        "outliers": sorted(result.outlier_ids),
        "n_outliers": len(result.outlier_ids),
        "resumed": result.resumed,
        "partitions_replayed": result.replayed_partitions,
        "partitions_executed": result.executed_partitions,
        "recovery": result.counters.group("recovery"),
        "metric": metric,
        "tier": getattr(result, "tier", "exact"),
    }
    tier_counters = result.counters.group("tier")
    if tier_counters:
        report["tier_counters"] = tier_counters
    if _last_quarantined:
        report["rows_quarantined"] = _last_quarantined
    return report


def _run_checkpointed_cli(args, checkpoint_dir: str) -> int:
    """Shared driver behind ``detect --checkpoint-dir`` and ``resume``."""
    from .recovery import CheckpointMismatch, run_checkpointed

    dataset, params, cluster = _detect(args)
    try:
        result = run_checkpointed(
            dataset, params, checkpoint_dir,
            strategy=args.strategy, detector=args.detector,
            runtime=_build_runtime(args, cluster), cluster=cluster,
            seed=args.seed, kernel=args.kernel,
            metric=getattr(args, "metric", None),
            tier=getattr(args, "tier", None),
            manifest_extra={
                "input": args.input,
                "with_ids": bool(args.with_ids),
                "nodes": int(args.nodes),
            },
        )
    except CheckpointMismatch as exc:
        raise CLIError(str(exc)) from exc
    if result.resumed:
        print(
            f"resumed: {len(result.replayed_partitions)} partitions "
            f"replayed from the journal, "
            f"{len(result.executed_partitions)} re-executed",
            file=sys.stderr,
        )
    metric = resolve_metric(getattr(args, "metric", None)).spec()
    _write_report(
        _checkpoint_report(result, params, metric), args.output
    )
    return 0


def _detect_checkpointed(args: argparse.Namespace) -> int:
    return _run_checkpointed_cli(args, args.checkpoint_dir)


def _cmd_resume(args: argparse.Namespace) -> int:
    """Finish an interrupted ``detect --checkpoint-dir`` run."""
    from .recovery import SnapshotError, read_manifest

    _reset_quarantine_counter()
    code = _enforce_runtime_flags(args)
    if code:
        return code
    try:
        manifest = read_manifest(args.checkpoint_dir)
    except SnapshotError as exc:
        raise CLIError(
            f"no resumable checkpoint: {exc}; run "
            "'repro detect --checkpoint-dir' first"
        ) from exc
    config = manifest["config"]
    extra = manifest.get("extra") or {}
    if "input" not in extra:
        raise CLIError(
            f"{args.checkpoint_dir}: manifest has no input path "
            "(checkpoint written by the library API, not the CLI); "
            "re-run via run_checkpointed() with the original dataset"
        )
    ns = argparse.Namespace(**vars(args))
    ns.input = extra["input"]
    ns.with_ids = bool(extra.get("with_ids", False))
    ns.nodes = int(extra.get("nodes", 4))
    ns.r = float(config["r"])
    ns.k = int(config["k"])
    ns.strategy = config["strategy"]
    ns.detector = config["detector"]
    ns.seed = int(config["seed"])
    # The metric is run identity: the manifest's record wins, so a
    # resume never silently re-detects under a different distance.
    ns.metric = config.get("metric")
    # Same for the tier: a fast run resumes fast, an exact run exact
    # (old manifests predate tiers and were always exact).
    ns.tier = config.get("tier", "exact")
    ns.quarantine_out = None
    return _run_checkpointed_cli(ns, args.checkpoint_dir)


def _streaming_detector(args, params, cluster):
    from .streaming import StreamingDetector

    return StreamingDetector(
        params,
        strategy=args.strategy,
        detector=args.detector,
        runtime=_build_runtime(args, cluster),
        cluster=cluster,
        drift_threshold=args.drift_threshold,
        seed=args.seed,
        kernel=args.kernel,
        metric=args.metric,
        tier=args.tier,
    )


def _batch_summary(report) -> dict:
    return {
        "batch": report.batch_index,
        "points": report.n_points,
        "points_seen": report.n_seen,
        "dirty_partitions": report.dirty_partitions,
        "total_partitions": report.total_partitions,
        "dirty_ratio": report.dirty_ratio,
        "cache_hit": report.cache_hit,
        "invalidation_reason": report.invalidation_reason,
        "n_outliers": len(report.outlier_ids),
        "wall_seconds": report.wall_seconds,
    }


def _stream_report(detector, params, batches: list) -> dict:
    return {
        "n_points": detector.n_seen,
        "params": {"r": params.r, "k": params.k},
        "strategy": detector.strategy.name,
        "metric": detector.metric or "euclidean",
        "tier": detector.tier,
        "outliers": sorted(detector.outlier_ids),
        "n_outliers": len(detector.outlier_ids),
        "batches": batches,
        "streaming": detector.counters.group("streaming"),
    }


def _detect_append(args: argparse.Namespace) -> int:
    """``detect --append``: initial detection + incremental batches."""
    dataset, params, cluster = _detect(args)
    detector = _streaming_detector(args, params, cluster)
    batches = [_batch_summary(detector.ingest(dataset))]
    for path in args.append:
        batch = _load_dataset(path, args.with_ids, args.quarantine_out)
        try:
            if args.with_ids:
                report = detector.ingest(batch)
            else:
                report = detector.ingest_points(batch.points)
        except ValueError as exc:
            # Dimension mismatches and id reuse between the prior state
            # and the appended batch arrive as ValueError.
            raise CLIError(f"cannot append {path}: {exc}") from exc
        batches.append(_batch_summary(report))
        print(
            f"appended {path}: +{report.n_points} points, "
            f"{report.dirty_partitions}/{report.total_partitions} "
            "partitions re-detected",
            file=sys.stderr,
        )
    _write_report(_stream_report(detector, params, batches), args.output)
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    _reset_quarantine_counter()
    code = _enforce_runtime_flags(args)
    if code:
        return code
    if args.batch_size < 1:
        print("error: --batch-size must be >= 1", file=sys.stderr)
        return 2
    dataset = _load_dataset(
        args.input, args.with_ids, args.quarantine_out
    )
    params = OutlierParams(r=args.r, k=args.k)
    cluster = ClusterConfig(nodes=args.nodes)
    if args.snapshot:
        from .streaming import StreamingDetector

        try:
            detector = StreamingDetector.restore(
                args.snapshot, params,
                strategy=args.strategy, detector=args.detector,
                runtime=_build_runtime(args, cluster), cluster=cluster,
                drift_threshold=args.drift_threshold, seed=args.seed,
                kernel=args.kernel, metric=args.metric, tier=args.tier,
            )
        except ValueError as exc:
            raise CLIError(str(exc)) from exc
        if detector.n_seen:
            print(
                f"resumed stream from {args.snapshot}: "
                f"{detector.n_seen} points, "
                f"{len(detector.outlier_ids)} outliers",
                file=sys.stderr,
            )
    else:
        detector = _streaming_detector(args, params, cluster)

    n_initial = (
        args.initial if args.initial is not None else args.batch_size
    )
    n_initial = max(1, min(n_initial, dataset.n))
    cuts = [0, n_initial]
    while cuts[-1] < dataset.n:
        cuts.append(min(dataset.n, cuts[-1] + args.batch_size))
    batches = []
    offset = 0
    if args.snapshot and detector.n_seen:
        # Auto-numbered ids must continue the resumed stream's sequence.
        offset = int(detector._ids.max()) + 1
    for lo, hi in zip(cuts, cuts[1:]):
        batch = dataset.subset(np.arange(lo, hi))
        try:
            if offset:
                report = detector.ingest_points(batch.points)
            else:
                report = detector.ingest(batch)
        except ValueError as exc:
            raise CLIError(
                f"cannot ingest batch into the resumed stream: {exc}"
            ) from exc
        if args.snapshot:
            detector.save(args.snapshot)
        batches.append(_batch_summary(report))
        status = (
            "hit" if report.cache_hit
            else f"rebuild({report.invalidation_reason or 'initial'})"
        )
        print(
            f"batch {report.batch_index}: +{report.n_points} pts "
            f"(total {report.n_seen}), dirty "
            f"{report.dirty_partitions}/{report.total_partitions} "
            f"({report.dirty_ratio:.0%}), plan {status}, "
            f"outliers {len(report.outlier_ids)}",
            file=sys.stderr,
        )
    _write_report(_stream_report(detector, params, batches), args.output)
    return 0


def _cmd_clean_shm(args: argparse.Namespace) -> int:
    """Sweep stale repo-prefixed /dev/shm segments (post-SIGKILL)."""
    from .mapreduce import clean_stale_segments, stale_segments

    if args.min_age < 0:
        raise CLIError("--min-age must be >= 0")
    if args.dry_run:
        victims = stale_segments(args.min_age)
        verb = "would remove"
    else:
        victims = clean_stale_segments(args.min_age)
        verb = "removed"
    for victim in victims:
        print(
            f"{verb} {victim['name']} "
            f"({victim['bytes']} bytes, "
            f"idle {victim['age_seconds']:.0f}s)"
        )
    total = sum(v["bytes"] for v in victims)
    print(f"{verb} {len(victims)} stale segments, {total} bytes")
    return 0


#: Exit code for transient service conditions: the request was valid
#: but the service cannot take or answer it *right now* (queue at its
#: backpressure bound, result timeout).  Distinct from 2 (usage/input
#: error) so callers can retry-with-backoff on 3 and not on 2.
EXIT_BACKPRESSURE = 3


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import serve

    if args.workers < 1:
        raise CLIError("--workers must be >= 1")

    def log(message: str) -> None:
        print(f"serve: {message}", file=sys.stderr)

    watermark = args.disk_low_watermark_mb
    return serve(
        args.spool,
        workers=args.workers,
        drain=args.drain,
        max_seconds=args.max_seconds,
        max_depth=args.max_depth,
        tenant_max_inflight=args.tenant_max_inflight,
        boost_after=args.boost_after,
        max_attempts=args.max_attempts,
        requeue_backoff=args.requeue_backoff,
        ttl_seconds=args.ttl,
        disk_low_watermark_bytes=(
            None if watermark is None else int(watermark * 1024 * 1024)
        ),
        log=log,
    )


def _cmd_submit(args: argparse.Namespace) -> int:
    from .service import QueueFull, ServiceClient, ServiceError

    if not os.path.exists(args.input):
        raise CLIError(f"input file not found: {args.input}")
    with ServiceClient(args.spool) as client:
        try:
            job_id = client.submit(
                args.input, r=args.r, k=args.k, tenant=args.tenant,
                lane=args.lane, strategy=args.strategy,
                detector=args.detector, seed=args.seed,
                nodes=args.nodes, workers=args.workers,
                transport=args.transport, kernel=args.kernel,
                metric=args.metric, tier=args.tier,
                with_ids=args.with_ids,
            )
        except QueueFull as exc:
            # Explicit backpressure: fail fast, tell the caller to
            # retry later — never hang waiting for space.
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_BACKPRESSURE
        except ServiceError as exc:
            raise CLIError(str(exc)) from exc
        print(job_id)
        if args.wait is not None:
            return _await_result(client, job_id, args.wait, args.output)
    return 0


def _await_result(client, job_id: int, timeout, output) -> int:
    from .service import (
        JobDeadlineExceeded,
        JobExpired,
        JobFailed,
        JobTimeout,
    )

    try:
        report = client.result(
            job_id, timeout=timeout if timeout > 0 else None
        )
    except JobTimeout as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_BACKPRESSURE
    except (JobDeadlineExceeded, JobExpired, JobFailed) as exc:
        raise CLIError(str(exc)) from exc
    _write_report(report, output)
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from .service import JobNotFound, ServiceClient

    with ServiceClient(args.spool) as client:
        if args.tenant is not None:
            if args.job_id is not None:
                raise CLIError(
                    "--tenant shows per-tenant rates for the whole "
                    "queue; drop the job id"
                )
            tenant = None if args.tenant == "*" else args.tenant
            stats = client.tenant_stats(tenant)
            if tenant is not None and tenant not in stats:
                raise CLIError(
                    f"tenant {tenant!r} has no jobs in this spool"
                )
            print(json.dumps(stats, indent=2))
            return 0
        if args.job_id is None:
            print(json.dumps(client.queue_stats(), indent=2))
            return 0
        try:
            job = client.status(args.job_id)
        except JobNotFound as exc:
            raise CLIError(str(exc)) from exc
    view = {
        key: job.get(key)
        for key in (
            "id", "tenant", "lane_name", "state", "cancel_requested",
            "attempts", "failure_kind", "submitted_at", "started_at",
            "finished_at", "queue_wait_seconds", "owner_pid", "error",
        )
        if job.get(key) is not None or key in ("state", "error")
    }
    print(json.dumps(view, indent=2))
    return 0


def _cmd_result(args: argparse.Namespace) -> int:
    from .service import JobNotFound, ServiceClient

    with ServiceClient(args.spool) as client:
        try:
            return _await_result(
                client, args.job_id, args.timeout, args.output
            )
        except JobNotFound as exc:
            raise CLIError(str(exc)) from exc


def _cmd_cancel(args: argparse.Namespace) -> int:
    from .service import JobNotFound, ServiceClient

    with ServiceClient(args.spool) as client:
        try:
            state = client.cancel(args.job_id)
        except JobNotFound as exc:
            raise CLIError(str(exc)) from exc
    print(f"job {args.job_id}: {state}")
    return 0


def _cmd_health(args: argparse.Namespace) -> int:
    from .service import ServiceClient

    with ServiceClient(args.spool) as client:
        health = client.health()
    print(json.dumps(health, indent=2))
    # Degraded is a transient service condition, not a usage error:
    # exit 3 so wrappers can alert/back off, matching submit's contract.
    return 0 if health["ok"] else EXIT_BACKPRESSURE


def _cmd_gc(args: argparse.Namespace) -> int:
    from .service import ServiceClient

    if args.ttl is not None and args.ttl < 0:
        raise CLIError("--ttl must be >= 0 seconds")
    with ServiceClient(args.spool) as client:
        if args.ttl is None:
            configured = client.queue_stats()["config"]["ttl_seconds"]
            if configured is None:
                raise CLIError(
                    "no retention TTL: pass --ttl SECONDS or configure "
                    "the spool with 'repro serve --ttl'"
                )
        swept = client.store.sweep_expired(
            ttl_seconds=args.ttl,
            include_quarantined=args.include_quarantined,
            dry_run=args.dry_run,
        )
    verb = "would reap" if args.dry_run else "reaped"
    for job_id in swept:
        print(f"{verb} job {job_id}")
    print(f"{verb} {len(swept)} settled job(s)")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    report = RunReport.load(args.input)
    print(render_report(report))
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    dataset, params, cluster = _detect(args)
    strategy = resolve_strategy(args.strategy)
    runtime = LocalRuntime(cluster)
    request = PlanRequest(
        domain=dataset.bounds,
        params=params,
        n_partitions=args.partitions,
        n_reducers=args.reducers,
        n_buckets=min(1024, max(64, dataset.n // 20)),
        sample_rate=min(0.5, max(0.005, 2000 / max(dataset.n, 1))),
        seed=args.seed,
    )
    plan = strategy.timed_plan(
        runtime, list(dataset.records()), request
    )
    save_plan(plan, args.output)
    print(
        f"{plan.n_partitions} partitions "
        f"({plan.strategy}) -> {args.output}"
    )
    return 0


def _stream_bench(args: argparse.Namespace) -> int:
    from .bench import StreamBenchConfig, run_stream_bench, save_bench

    if args.check:
        print(
            "error: --check compares the fixed perf matrix; it does not "
            "apply to --stream",
            file=sys.stderr,
        )
        return 2
    overrides = {}
    if args.label:
        overrides["label"] = args.label
    if args.workers is not None:
        overrides["workers"] = args.workers
    if args.base_n is not None:
        overrides["base_n"] = args.base_n
    if args.quick:
        config = StreamBenchConfig.quick(**overrides)
    else:
        config = StreamBenchConfig(**overrides)

    result = run_stream_bench(config, log=print)
    out_path = args.output or f"STREAM_{config.label}.json"
    save_bench(result, out_path)
    print(f"stream bench result -> {out_path}")

    derived = result["derived"]
    print(
        f"incremental {derived['incremental_total_seconds']:.3f}s vs "
        f"full re-runs {derived['full_rerun_total_seconds']:.3f}s "
        f"({derived['speedup_vs_full']:.2f}x); identical outliers: "
        f"{derived['identical_outliers']}; plan cache hit rate "
        f"{derived['plan_cache_hit_rate']:.0%}"
    )
    return 0 if derived["identical_outliers"] else 1


def _recovery_bench(args: argparse.Namespace) -> int:
    from .bench import (
        RecoveryBenchConfig,
        run_recovery_bench,
        save_bench,
    )

    if args.check:
        print(
            "error: --check compares the fixed perf matrix; it does not "
            "apply to --recovery",
            file=sys.stderr,
        )
        return 2
    overrides = {}
    if args.label:
        overrides["label"] = args.label
    if args.workers is not None:
        overrides["workers"] = args.workers
    if args.base_n is not None:
        overrides["base_n"] = args.base_n
    if args.quick:
        config = RecoveryBenchConfig.quick(**overrides)
    else:
        config = RecoveryBenchConfig(**overrides)

    result = run_recovery_bench(config, log=print)
    out_path = args.output or f"RECOVERY_{config.label}.json"
    save_bench(result, out_path)
    print(f"recovery bench result -> {out_path}")

    derived = result["derived"]
    print(
        f"journal overhead {derived['journal_overhead_ratio']:.2f}x "
        f"over a plain run; mean resume cost "
        f"{derived['mean_resume_over_full_ratio']:.2f}x of a full run; "
        f"identical outliers: {derived['identical_outliers']}"
    )
    return 0 if derived["identical_outliers"] else 1


def _service_bench(args: argparse.Namespace) -> int:
    from .bench import (
        ServiceBenchConfig,
        run_service_bench,
        save_bench,
    )

    if args.check:
        print(
            "error: --check compares the fixed perf matrix; it does not "
            "apply to --service",
            file=sys.stderr,
        )
        return 2
    overrides = {}
    if args.label:
        overrides["label"] = args.label
    if args.workers is not None:
        overrides["workers"] = args.workers
    if args.base_n is not None:
        overrides["base_n"] = args.base_n
    if args.quick:
        config = ServiceBenchConfig.quick(**overrides)
    else:
        config = ServiceBenchConfig(**overrides)

    result = run_service_bench(config, log=print)
    out_path = args.output or f"SERVICE_{config.label}.json"
    save_bench(result, out_path)
    print(f"service bench result -> {out_path}")

    derived = result["derived"]
    print(
        f"{derived['n_jobs']} jobs drained in "
        f"{derived['drain_wall_seconds']:.3f}s "
        f"({derived['jobs_per_second']:.2f} jobs/s); mean latency "
        f"{derived['mean_latency_seconds']:.3f}s (queue wait "
        f"{derived['mean_queue_wait_seconds']:.3f}s); plan cache hit "
        f"rate {derived['plan_cache_hit_rate']:.0%}; identical "
        f"outliers: {derived['identical_outliers']}"
    )
    for tenant, rates in sorted(derived["tenant_rates"].items()):
        print(
            f"  {tenant}: {rates['submitted']} submitted, "
            f"{rates['done']} done, {rates['failed']} failed, "
            f"{rates['quarantined']} quarantined; queue wait "
            f"p50 {rates.get('queue_wait_p50_seconds', 0.0):.3f}s / "
            f"p95 {rates.get('queue_wait_p95_seconds', 0.0):.3f}s"
        )
    return 0 if derived["identical_outliers"] else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import BenchConfig, check_against, run_bench, save_bench

    modes = [
        name for name, on in [
            ("--stream", args.stream),
            ("--recovery", args.recovery),
            ("--service", args.service),
        ] if on
    ]
    if len(modes) > 1:
        print(
            f"error: pick one of {' / '.join(modes)}", file=sys.stderr
        )
        return 2
    if args.recovery:
        return _recovery_bench(args)
    if args.stream:
        return _stream_bench(args)
    if args.service:
        return _service_bench(args)
    overrides = {}
    if args.label:
        overrides["label"] = args.label
    if args.repeats is not None:
        overrides["repeats"] = args.repeats
    if args.workers is not None:
        overrides["workers"] = args.workers
    if args.base_n is not None:
        overrides["base_n"] = args.base_n
    if args.r is not None:
        overrides["r"] = args.r
    if args.k is not None:
        overrides["k"] = args.k
    if args.detectors:
        overrides["detectors"] = tuple(args.detectors.split(","))
    if args.kernels:
        overrides["kernels"] = tuple(args.kernels.split(","))
    if args.transports is not None:
        transports = tuple(
            t for t in args.transports.split(",")
            if t and t != "none"
        )
        for transport in transports:
            if transport not in ("pickle", "shm"):
                print(
                    f"error: --transports accepts pickle,shm or none "
                    f"(got {transport!r})",
                    file=sys.stderr,
                )
                return 2
        overrides["transports"] = transports
    if args.tiers:
        tiers = tuple(args.tiers.split(","))
        for tier in tiers:
            if tier not in ("exact", "fast"):
                print(
                    f"error: --tiers accepts exact,fast (got {tier!r})",
                    file=sys.stderr,
                )
                return 2
        overrides["tiers"] = tiers
    if args.metric:
        try:
            overrides["metric"] = resolve_metric(args.metric).spec()
        except (ValueError, MetricUnsupported) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.quick:
        config = BenchConfig.quick(**overrides)
    else:
        config = BenchConfig(**overrides)

    result = run_bench(config, log=print)
    out_path = args.output or f"BENCH_{config.label}.json"
    save_bench(result, out_path)
    print(f"bench result -> {out_path}")

    derived = result["derived"]
    for detector, entry in derived["per_detector"].items():
        ratio = entry.get("dispatch_overhead_ratio")
        if ratio is not None:
            print(
                f"{detector}: shm dispatch {ratio:.2f}x cheaper per "
                f"task than pickle; identical outliers: "
                f"{entry['identical_outliers']}"
            )
        kernel_ratio = entry.get("kernel_speedup_ratio")
        if kernel_ratio is not None:
            print(
                f"{detector}: numpy kernel {kernel_ratio:.2f}x faster "
                "per reduce task than the python oracle"
            )

    if args.check:
        with open(args.check) as f:
            baseline = json.load(f)
        problems = check_against(
            result, baseline, tolerance=args.tolerance
        )
        if problems:
            print(f"\nBENCH GATE FAILED vs {args.check}:")
            for problem in problems:
                print(f"  {problem}")
            print(
                "(if intentional, regenerate the baseline with "
                f"repro bench --quick -o {args.check})"
            )
            return 1
        print(f"bench gate OK vs {args.check}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args.input, args.with_ids)
    bounds = dataset.bounds
    print(f"points:  {dataset.n}")
    print(f"dims:    {dataset.ndim}")
    print(f"bounds:  {list(bounds.low)} .. {list(bounds.high)}")
    print(f"area:    {bounds.area:.6g}")
    print(f"density: {dataset.density:.6g}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-tactic distance-based outlier detection (DOD).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic dataset")
    gen.add_argument("--kind", choices=["state", "region", "tiger",
                                        "uniform"], default="state")
    gen.add_argument("--name", default="MA",
                     help="state/region name (state, region kinds)")
    gen.add_argument("-n", type=int, default=30_000)
    gen.add_argument("--density", type=float, default=1.0,
                     help="points per unit area (uniform kind)")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("-o", "--output", required=True)
    gen.set_defaults(func=_cmd_generate)

    def add_common(p):
        p.add_argument("input", help="CSV of points")
        p.add_argument("--with-ids", action="store_true",
                       help="first CSV column is the point id")
        p.add_argument("-r", type=float, required=True,
                       help="distance threshold")
        p.add_argument("-k", type=int, required=True,
                       help="neighbor-count threshold")
        p.add_argument("--strategy", default="DMT")
        p.add_argument("--nodes", type=int, default=4)
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--quarantine-out", metavar="CSV", default=None,
                       help="divert rows with NaN/inf coordinates to "
                            "this CSV and continue (default: such rows "
                            "are an error)")

    def add_runtime_flags(p):
        p.add_argument("--straggler-threshold", type=float, default=2.0,
                       help="flag tasks costing more than this multiple "
                            "of the phase median (default 2.0); also the "
                            "speculation trigger with --speculate")
        p.add_argument("--workers", type=int, default=0,
                       help="run tasks in this many worker processes "
                            "(0 = serial in-process execution)")
        p.add_argument("--transport", choices=list(TRANSPORTS),
                       default="pickle",
                       help="dispatch transport with --workers > 0: "
                            "'pickle' re-serializes each task's payload, "
                            "'shm' ships shared-memory descriptors "
                            "(identical results, lower dispatch cost)")
        p.add_argument("--max-attempts", type=int, default=4,
                       help="attempts per task before the degradation "
                            "policy applies (default 4)")
        p.add_argument("--timeout", type=float, default=None,
                       help="per-attempt wall-clock timeout in seconds "
                            "(default: none)")
        p.add_argument("--backoff", type=float, default=0.0,
                       help="base delay before the first retry, doubling "
                            "per retry with seeded jitter (default 0 = "
                            "retry immediately)")
        p.add_argument("--speculate", action="store_true",
                       help="launch duplicate attempts for straggler "
                            "tasks (needs --workers > 0)")
        p.add_argument("--degrade", choices=["fail", "skip"],
                       default="fail",
                       help="when a task exhausts its attempts: fail the "
                            "run, or skip its partition with a warning")

    def add_kernel_flag(p):
        p.add_argument("--kernel", choices=list(KERNEL_CHOICES),
                       default=None,
                       help="distance backend for scan-based detectors "
                            "('python' scalar oracle, 'numpy' vectorized "
                            "default, 'numba' optional JIT); results are "
                            "identical, only wall time changes "
                            "(default: auto = $REPRO_KERNEL or numpy)")

    def add_metric_flag(p):
        p.add_argument("--metric", default=None, metavar="SPEC",
                       help="distance metric: "
                            + ", ".join(METRIC_CHOICES)
                            + "; minkowski takes 'minkowski:P' (e.g. "
                            "minkowski:1 for Manhattan). Unlike --kernel "
                            "this changes the answer: non-Euclidean runs "
                            "use metric-safe pivot partitioning and "
                            "require a metric-generic detector "
                            "(default: auto = $REPRO_METRIC or euclidean)")

    def add_tier_flag(p):
        p.add_argument("--tier", choices=list(TIER_CHOICES),
                       default=None,
                       help="detection tier: 'exact' runs the full "
                            "machinery, 'fast' prepends a sensitivity-"
                            "sampled certification pass (identical "
                            "outlier set, less exact work), 'auto' "
                            "picks via the cost model (default: "
                            "$REPRO_TIER or exact)")

    det = sub.add_parser("detect", help="run the detection pipeline")
    add_common(det)
    det.add_argument("--detector", default="nested_loop")
    det.add_argument("-o", "--output", help="write JSON report here")
    det.add_argument("--trace-out", metavar="PATH",
                     help="write the JSONL run report (spans, reducer "
                          "loads, skew, stragglers) here")
    det.add_argument("--append", metavar="CSV", action="append",
                     default=[],
                     help="after the initial detection, ingest this CSV "
                          "as an incremental micro-batch (repeatable); "
                          "only the partitions it dirties are re-run")
    det.add_argument("--drift-threshold", type=float, default=0.25,
                     help="density drift (total-variation distance) that "
                          "invalidates the cached partition plan with "
                          "--append (default 0.25)")
    det.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                     help="journal every partition verdict to DIR; a run "
                          "killed mid-flight is finished by 'repro "
                          "resume DIR' (replays committed partitions, "
                          "re-runs only the rest)")
    add_runtime_flags(det)
    add_kernel_flag(det)
    add_metric_flag(det)
    add_tier_flag(det)
    det.set_defaults(func=_cmd_detect)

    resume = sub.add_parser(
        "resume",
        help="finish an interrupted 'detect --checkpoint-dir' run: "
             "replay journaled partitions, re-run the rest",
    )
    resume.add_argument("checkpoint_dir",
                        help="checkpoint directory of the killed run")
    resume.add_argument("-o", "--output",
                        help="write JSON report here")
    add_runtime_flags(resume)
    add_kernel_flag(resume)
    add_metric_flag(resume)
    resume.set_defaults(func=_cmd_resume)

    stream = sub.add_parser(
        "stream",
        help="incremental detection over micro-batches of a CSV (or "
             "stdin with '-'); re-runs only dirty partitions per batch",
    )
    add_common(stream)
    stream.add_argument("--detector", default="nested_loop")
    stream.add_argument("--batch-size", type=int, default=500,
                        help="points per micro-batch (default 500)")
    stream.add_argument("--initial", type=int, default=None,
                        help="size of the initial bulk-load batch "
                             "(default: --batch-size)")
    stream.add_argument("--drift-threshold", type=float, default=0.25,
                        help="density drift (total-variation distance) "
                             "that invalidates the cached partition plan "
                             "(default 0.25)")
    stream.add_argument("-o", "--output",
                        help="write the final JSON report here")
    stream.add_argument("--snapshot", metavar="PATH", default=None,
                        help="persist the stream state here after every "
                             "batch; an existing snapshot is restored "
                             "first, so a killed stream resumes where "
                             "it stopped (corrupt snapshots fall back "
                             "to a clean start)")
    add_runtime_flags(stream)
    add_kernel_flag(stream)
    add_metric_flag(stream)
    add_tier_flag(stream)
    stream.set_defaults(func=_cmd_stream)

    def add_spool_flag(p):
        from .service.store import default_spool

        p.add_argument("--spool", metavar="DIR",
                       default=default_spool(),
                       help="service spool directory holding the job "
                            "queue, checkpoints, and results (default "
                            "./.repro-service)")

    serve = sub.add_parser(
        "serve",
        help="run the detection service: a worker pool over a durable "
             "job queue; submit work with 'repro submit'",
    )
    add_spool_flag(serve)
    serve.add_argument("--workers", type=int, default=2,
                       help="worker processes in the pool (default 2)")
    serve.add_argument("--drain", action="store_true",
                       help="exit once every queued job has settled "
                            "(batch mode; default: serve forever)")
    serve.add_argument("--max-seconds", type=float, default=None,
                       help="hard wall-clock bound; exits 3 if work "
                            "remains (liveness backstop)")
    serve.add_argument("--max-depth", type=int, default=None,
                       help="queue depth bound: submits past it are "
                            "rejected with QueueFull (default 64)")
    serve.add_argument("--tenant-max-inflight", type=int, default=None,
                       help="per-tenant queued+running quota "
                            "(default 8)")
    serve.add_argument("--boost-after", type=int, default=None,
                       help="serve a starved lane after it was passed "
                            "over this many times (default 4)")
    serve.add_argument("--max-attempts", type=int, default=None,
                       help="retry budget: a job whose workers died "
                            "this many times is quarantined instead of "
                            "re-queued (default 10; 0 disables)")
    serve.add_argument("--requeue-backoff", type=float, default=None,
                       metavar="SECONDS",
                       help="base hold before an orphaned job may be "
                            "re-claimed, doubling per attempt "
                            "(default 0: immediate)")
    serve.add_argument("--ttl", type=float, default=None,
                       metavar="SECONDS",
                       help="retention TTL: settled jobs older than "
                            "this are tombstoned and their spool dirs "
                            "reaped (default: keep forever)")
    serve.add_argument("--disk-low-watermark-mb", type=float,
                       default=None, metavar="MB",
                       help="degrade (reject submissions) when the "
                            "spool volume's free space drops below "
                            "this; lifts at 2x (default: disabled)")
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit",
        help="queue a detection job on the service; prints its job id",
    )
    add_common(submit)
    submit.add_argument("--detector", default="nested_loop")
    add_spool_flag(submit)
    submit.add_argument("--tenant", default="default",
                        help="tenant the job is accounted to "
                             "(admission quotas are per tenant)")
    submit.add_argument("--lane", choices=["interactive", "batch"],
                        default="batch",
                        help="priority lane: interactive beats batch, "
                             "FIFO within a lane (default batch)")
    submit.add_argument("--workers", type=int, default=0,
                        help="worker processes the job's runtime uses "
                             "(0 = serial)")
    submit.add_argument("--transport", choices=list(TRANSPORTS),
                        default="pickle")
    add_kernel_flag(submit)
    add_metric_flag(submit)
    submit.add_argument("--tier", choices=list(TIER_CHOICES),
                        default=None,
                        help="detection tier for this job (default: "
                             "the lane's default — fast for "
                             "interactive, exact for batch)")
    submit.add_argument("--wait", type=float, metavar="SECONDS",
                        default=None,
                        help="block for the result up to SECONDS "
                             "(0 = forever); default: return "
                             "immediately after queueing")
    submit.add_argument("-o", "--output",
                        help="with --wait: write the result JSON here")
    submit.set_defaults(func=_cmd_submit)

    status = sub.add_parser(
        "status",
        help="show one job's state, or the queue's shape without an id",
    )
    status.add_argument("job_id", nargs="?", type=int, default=None)
    add_spool_flag(status)
    status.add_argument("--tenant", nargs="?", const="*", default=None,
                        metavar="NAME",
                        help="per-tenant rates instead: submitted/done/"
                             "failed/quarantined counts and queue-wait "
                             "p50/p95 (bare --tenant shows every "
                             "tenant)")
    status.set_defaults(func=_cmd_status)

    result = sub.add_parser(
        "result", help="fetch (and wait for) a submitted job's report"
    )
    result.add_argument("job_id", type=int)
    add_spool_flag(result)
    result.add_argument("--timeout", type=float, default=60.0,
                        help="seconds to wait for the job to settle "
                             "(0 = forever; default 60)")
    result.add_argument("-o", "--output",
                        help="write the result JSON here")
    result.set_defaults(func=_cmd_result)

    cancel = sub.add_parser(
        "cancel",
        help="cancel a job: queued jobs immediately, running jobs "
             "cooperatively at their next commit",
    )
    cancel.add_argument("job_id", type=int)
    add_spool_flag(cancel)
    cancel.set_defaults(func=_cmd_cancel)

    health = sub.add_parser(
        "health",
        help="service health: queue depths per lane, worker liveness, "
             "degrade state, quarantine count (exit 3 when degraded)",
    )
    add_spool_flag(health)
    health.set_defaults(func=_cmd_health)

    gc = sub.add_parser(
        "gc",
        help="reap settled jobs past the retention TTL: tombstone the "
             "row (status/result answer 'expired'), remove the spool "
             "dir",
    )
    add_spool_flag(gc)
    gc.add_argument("--ttl", type=float, default=None, metavar="SECONDS",
                    help="retention age override; default: the spool's "
                         "configured ttl (error if neither is set)")
    gc.add_argument("--include-quarantined", action="store_true",
                    help="also reap quarantined jobs (their journals "
                         "are otherwise kept for post-mortem)")
    gc.add_argument("--dry-run", action="store_true",
                    help="list what would be reaped without touching "
                         "rows or directories")
    gc.set_defaults(func=_cmd_gc)

    clean = sub.add_parser(
        "clean-shm",
        help="remove orphaned shared-memory segments left in /dev/shm "
             "by killed runs (runtime exits sweep their own)",
    )
    clean.add_argument("--min-age", type=float, default=60.0,
                       help="only touch segments idle at least this "
                            "many seconds (default 60)")
    clean.add_argument("--dry-run", action="store_true",
                       help="list stale segments without removing them")
    clean.set_defaults(func=_cmd_clean_shm)

    trace = sub.add_parser(
        "trace", help="render a JSONL run report written by "
                      "'detect --trace-out'"
    )
    trace.add_argument("input", help="run report (.jsonl)")
    trace.set_defaults(func=_cmd_trace)

    plan = sub.add_parser("plan", help="build and save a partition plan")
    add_common(plan)
    plan.add_argument("--partitions", type=int, default=16)
    plan.add_argument("--reducers", type=int, default=8)
    plan.add_argument("-o", "--output", required=True)
    plan.set_defaults(func=_cmd_plan)

    info = sub.add_parser("info", help="describe a CSV dataset")
    info.add_argument("input")
    info.add_argument("--with-ids", action="store_true")
    info.set_defaults(func=_cmd_info)

    bench = sub.add_parser(
        "bench",
        help="run the serial/parallel x transport x detector perf "
             "matrix and emit BENCH_<label>.json",
    )
    bench.add_argument("--label", default=None,
                       help="output label (BENCH_<label>.json); "
                            "defaults to 'fig8', or 'smoke' with --quick")
    bench.add_argument("--quick", action="store_true",
                       help="small matrix for CI (one detector, fewer "
                            "points, 2 workers, 2 repeats)")
    bench.add_argument("--stream", action="store_true",
                       help="run the streaming benchmark instead: "
                            "incremental micro-batches vs full re-runs, "
                            "emitting STREAM_<label>.json")
    bench.add_argument("--recovery", action="store_true",
                       help="run the recovery benchmark instead: "
                            "journal overhead + crash/resume cost, "
                            "emitting RECOVERY_<label>.json")
    bench.add_argument("--service", action="store_true",
                       help="run the service benchmark instead: "
                            "submit->result latency under concurrent "
                            "tenants, emitting SERVICE_<label>.json")
    bench.add_argument("--repeats", type=int, default=None,
                       help="runs per matrix cell; min wall is reported")
    bench.add_argument("--workers", type=int, default=None,
                       help="worker processes for the parallel cells")
    bench.add_argument("--base-n", type=int, default=None,
                       help="base dataset size (region generator)")
    bench.add_argument("--r", type=float, default=None,
                       help="distance threshold in the metric's units "
                            "(km for haversine; default 2.0)")
    bench.add_argument("--k", type=int, default=None,
                       help="neighbor count threshold (default 12)")
    bench.add_argument("--detectors", default=None,
                       help="comma-separated detector list")
    bench.add_argument("--kernels", default=None,
                       help="comma-separated kernel backends for the "
                            "serial kernel axis (default python,numpy)")
    bench.add_argument("--tiers", default=None,
                       help="comma-separated detection tiers for the "
                            "serial tier axis (exact,fast); tiers other "
                            "than plain 'exact' join the workload "
                            "identity (default exact,fast; --quick "
                            "defaults to exact only)")
    bench.add_argument("--transports", default=None,
                       help="comma-separated dispatch transports for "
                            "the parallel cells (default pickle,shm); "
                            "'none' drops the parallel cells entirely "
                            "for a serial-only deterministic matrix")
    bench.add_argument("--metric", default=None, metavar="SPEC",
                       help="distance metric for the whole matrix; "
                            "non-Euclidean metrics drop Euclidean-only "
                            "detectors from the detector axis and are "
                            "recorded in the workload identity")
    bench.add_argument("-o", "--output", default=None,
                       help="output path (default BENCH_<label>.json)")
    bench.add_argument("--check", metavar="BASELINE",
                       help="compare against a baseline BENCH json; "
                            "non-zero exit on regression")
    bench.add_argument("--tolerance", type=float, default=0.25,
                       help="relative tolerance for ratio comparisons "
                            "with --check (default 0.25)")
    bench.set_defaults(func=_cmd_bench)
    return parser


def main(argv=None) -> int:
    global _last_quarantined
    _last_quarantined = 0
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except CLIError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
